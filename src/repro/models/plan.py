"""The kernel-plan IR: declarative solver call sequences over the ports.

The paper's central observation is that all models run *the same solver
logic* and differ only in how each wraps kernel dispatch, data residency,
and reductions.  This module makes that shared structure explicit: solvers
build :class:`Plan` objects — flat sequences of kernel calls, halo
exchanges, and scalar recurrences — and a :class:`PlanExecutor` replays
them against any port.  Each port then needs only a table of ``_k_*``
primitives plus a residency adapter (see ``models/base.py``); the ~20
imperative per-port kernel methods collapse into the shared dispatch core.

Because the plan knows, per operation, which fields are read (and which of
those through the 5-point stencil), which are written, and whether a global
reduction is involved, it is the single surface for cross-model
optimisation:

* **Fusion** (``Plan.compiled(fuse=True)``): adjacent fusable kernels whose
  stencil reads do not overlap earlier writes in the group are merged into
  one :class:`FusedGroup`, dispatched as a single traversal.  Reductions
  stay on the canonical ``deterministic_sum`` path and the member bodies
  run in original order, so results are bitwise-identical to the unfused
  plan.
* **Residency tracking**: executed plans report written fields to the
  port's dirty-set adapter, letting offload ports elide redundant
  host<->device transfers (see ``Port.enable_residency_tracking``).
* **Resilience instrumentation** (``Plan.compiled(..., instrument=True)``):
  fault-injection triggers (:class:`FaultStep`) and isfinite/divergence
  guards (:class:`GuardStep`) are explicit steps the compiler places at
  fusion-group boundaries, so detection composes with fusion and residency
  instead of requiring a per-kernel proxy that fused dispatch would
  bypass.  The executor also journals every step's write set into the
  resilience manager, which is what lets checkpoints go incremental.

``python -m repro plan --model M --solver S`` dumps the compiled plan.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from repro.core.kernels import KERNELS, KernelSpec
from repro.util.errors import CorruptionError, ModelError


def check_finite(name: str, value: float) -> float:
    """Scalar corruption guard shared by solvers and the executor.

    NaN/Inf must never propagate silently out of a reduction; the message
    matches the historical ``Solver._finite`` wording so resilience tests
    keyed on it keep passing.
    """
    if not math.isfinite(value):
        raise CorruptionError(f"non-finite solver scalar {name} = {value!r}")
    return value


# --------------------------------------------------------------------- #
# the operation table
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class OpSpec:
    """Dataflow facts for one port-level operation.

    ``kernel`` names the :data:`repro.core.kernels.KERNELS` entry traced
    for the launch.  ``reads``/``writes`` are the statically-known fields;
    ``stencil_reads`` is the subset of reads that go through the 5-point
    neighbourhood (the fusion legality test only cares about those —
    same-cell reads of a field written earlier in a fused traversal see
    the updated value in every port, exactly as in the unfused sequence).
    Operations whose field arguments arrive at call time (``dot_fields``,
    ``copy_field``...) declare them via ``reads_args``/``writes_arg``.
    """

    name: str
    kernel: str
    reads: tuple[str, ...] = ()
    stencil_reads: tuple[str, ...] = ()
    writes: tuple[str, ...] = ()
    fusable: bool = False
    reduction: bool = False
    #: Index into the call args naming a written field (copy_field's dst).
    writes_arg: int | None = None
    #: When True, every string arg names a field that is read.
    reads_args: bool = False
    #: Fields some *interpreted* port implementations clobber as private
    #: staging even though they are outside the declared dataflow (the
    #: cheby kernels stage ``A u`` through ``w``).  Ignored by fusion,
    #: codegen and residency — but the liveness pass must treat them as
    #: use+def so arena slot sharing never hands the staging bytes to a
    #: concurrently-live field.
    scratch_writes: tuple[str, ...] = ()

    def written(self, args: tuple[Any, ...]) -> tuple[str, ...]:
        out = self.writes
        if self.writes_arg is not None and self.writes_arg < len(args):
            arg = args[self.writes_arg]
            if isinstance(arg, str):
                out = out + (arg,)
        return out

    def read_fields(self, args: tuple[Any, ...]) -> tuple[str, ...]:
        out = self.reads
        if self.reads_args:
            out = out + tuple(a for a in args if isinstance(a, str))
        return out

    def spec(self) -> KernelSpec:
        return KERNELS[self.kernel]


def _op(name: str, **kw: Any) -> tuple[str, OpSpec]:
    return name, OpSpec(name=name, kernel=kw.pop("kernel", name), **kw)


from repro.core import fields as F  # noqa: E402  (table needs the names)

#: Every port-level operation a plan may call, keyed by the public
#: ``Port`` method name.  ``fusable=False`` marks operations whose bodies
#: are multi-sweep (cheby/ppcg inner) or whose port implementations differ
#: structurally (copy_field is a D2D memcpy on CUDA, a deep_copy on
#: Kokkos) — fusing those would change trace structure per model.
OPS: dict[str, OpSpec] = dict(
    (
        _op(
            "set_field",
            reads=(F.ENERGY0,),
            writes=(F.ENERGY1,),
            fusable=True,
        ),
        _op(
            "tea_leaf_init",
            reads=(F.DENSITY, F.ENERGY1),
            stencil_reads=(F.DENSITY,),
            writes=(F.U, F.U0, F.KX, F.KY),
            fusable=True,
        ),
        _op(
            "tea_leaf_residual",
            reads=(F.U0, F.U, F.KX, F.KY),
            stencil_reads=(F.U, F.KX, F.KY),
            writes=(F.R,),
            fusable=True,
        ),
        _op(
            "cg_init",
            reads=(F.U, F.U0, F.KX, F.KY),
            stencil_reads=(F.U, F.KX, F.KY),
            writes=(F.W, F.R, F.P),
            reduction=True,
            fusable=True,
        ),
        _op(
            "cg_calc_w",
            reads=(F.P, F.KX, F.KY),
            stencil_reads=(F.P, F.KX, F.KY),
            writes=(F.W,),
            reduction=True,
            fusable=True,
        ),
        _op(
            "cg_calc_ur",
            reads=(F.U, F.R, F.P, F.W),
            writes=(F.U, F.R),
            reduction=True,
            fusable=True,
        ),
        _op("cg_calc_p", reads=(F.R, F.P), writes=(F.P,), fusable=True),
        _op(
            "cheby_init",
            reads=(F.U, F.U0, F.KX, F.KY),
            stencil_reads=(F.U, F.KX, F.KY),
            writes=(F.R, F.SD, F.U),
            scratch_writes=(F.W,),
        ),
        _op(
            "cheby_iterate",
            reads=(F.R, F.SD, F.U, F.KX, F.KY),
            stencil_reads=(F.SD, F.KX, F.KY),
            writes=(F.R, F.SD, F.U),
            scratch_writes=(F.W,),
        ),
        _op(
            "ppcg_precon_init",
            reads=(F.R,),
            writes=(F.W, F.SD, F.Z),
            fusable=True,
        ),
        _op(
            "ppcg_precon_inner",
            kernel="ppcg_inner",
            reads=(F.W, F.SD, F.Z, F.KX, F.KY),
            stencil_reads=(F.SD, F.KX, F.KY),
            writes=(F.W, F.SD, F.Z),
        ),
        _op(
            "ppcg_calc_p",
            kernel="cg_calc_p",
            reads=(F.Z, F.P),
            writes=(F.P,),
            fusable=True,
        ),
        _op(
            "cg_precon_jacobi",
            kernel="cg_precon",
            reads=(F.R, F.KX, F.KY),
            stencil_reads=(F.KX, F.KY),
            writes=(F.Z,),
            fusable=True,
        ),
        _op(
            "jacobi_iterate",
            reads=(F.U, F.U0, F.KX, F.KY, F.R),
            stencil_reads=(F.R, F.KX, F.KY),
            writes=(F.U, F.R),
            reduction=True,
        ),
        _op("norm2_field", kernel="norm2", reads_args=True, reduction=True, fusable=True),
        _op(
            "dot_fields",
            kernel="dot_product",
            reads_args=True,
            reduction=True,
            fusable=True,
        ),
        _op("copy_field", reads_args=True, writes_arg=1),
        _op(
            "tea_leaf_finalise",
            reads=(F.U, F.DENSITY),
            writes=(F.ENERGY1,),
            fusable=True,
        ),
        _op(
            "field_summary",
            reads=(F.DENSITY, F.ENERGY1, F.U),
            reduction=True,
        ),
    )
)


# --------------------------------------------------------------------- #
# plan steps
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class Bind:
    """A late-bound scalar argument, resolved from the plan environment."""

    key: str


@dataclass(frozen=True)
class KernelCall:
    """One port operation: ``env[out] = port.<op>(*args)``."""

    op: str
    args: tuple[Any, ...] = ()
    #: Environment key the (scalar) result is stored under, if any.
    out: str | None = None
    #: Apply the NaN/Inf corruption guard to the result.
    finite: bool = False

    @property
    def spec(self) -> OpSpec:
        return OPS[self.op]


@dataclass(frozen=True)
class HaloStep:
    """Reflective halo exchange on ``names`` to ``depth``."""

    names: tuple[str, ...]
    depth: int = 1


@dataclass(frozen=True)
class ScalarStep:
    """Host-side scalar recurrence: ``env[out] = fn(env)``."""

    out: str
    fn: Callable[[Mapping[str, float]], float]
    finite: bool = False


@dataclass(frozen=True)
class BarrierStep:
    """A port lifecycle call (``begin_solve``/``end_solve``).

    For host ports the data region is a no-op, so the compiler may hoist
    the barrier across a fusion group (``transparent_barriers``); offload
    ports keep it as a hard fence.
    """

    method: str


@dataclass(frozen=True)
class FusedGroup:
    """Adjacent fusable kernel calls dispatched as one traversal.

    The synthesised launch spec and the Bind scan are computed once at
    construction (compile) time: ``dispatch_fused`` used to rebuild the
    spec — read/write set walks, a :class:`KernelSpec`, a string join —
    on *every* execution, which made ``--fuse`` a measurable wall-time
    regression on fast ports despite dispatching fewer launches.
    Construction also audits the member dataflow (:func:`audit_fusion`),
    so an illegal group cannot be built at all.
    """

    calls: tuple[KernelCall, ...]
    #: Synthesised launch spec (compile-time constant for the group).
    spec: KernelSpec = field(init=False, repr=False, compare=False)
    #: True when any member has a late-bound scalar argument; groups
    #: without one skip per-execution argument resolution entirely.
    has_binds: bool = field(init=False, compare=False)

    def __post_init__(self) -> None:
        audit_fusion(self.calls)
        object.__setattr__(self, "spec", fused_spec(self.calls))
        object.__setattr__(
            self,
            "has_binds",
            any(isinstance(a, Bind) for c in self.calls for a in c.args),
        )


@dataclass(frozen=True)
class OverlapStep:
    """An exchange overlapped with the interior sweep of the next step.

    Built by the overlap pass (``Plan.compiled(..., overlap=True)``)
    from an adjacent ``(HaloStep, KernelCall | FusedGroup)`` pair whose
    dataflow :func:`~repro.models.overlap.overlap_reason` declares safe:
    the exchange is posted, every chunk's core (cells whose stencil
    cannot reach a ghost layer) is swept while the messages are in
    flight, the wait completes delivery, the boundary strips sweep
    against the fresh ghosts, and member epilogues/reductions finish
    over the whole interior.  Results are bitwise-identical to running
    the halo then the body — only the exposed communication time
    changes.
    """

    halo: HaloStep
    body: Any  # KernelCall | FusedGroup
    calls: tuple[KernelCall, ...] = field(init=False, compare=False)
    has_binds: bool = field(init=False, compare=False)
    argv: tuple[tuple[Any, ...], ...] = field(init=False, compare=False)

    def __post_init__(self) -> None:
        calls = (
            self.body.calls
            if isinstance(self.body, FusedGroup)
            else (self.body,)
        )
        object.__setattr__(self, "calls", calls)
        object.__setattr__(
            self,
            "has_binds",
            any(isinstance(a, Bind) for c in calls for a in c.args),
        )
        object.__setattr__(self, "argv", tuple(c.args for c in calls))


@dataclass(frozen=True)
class FaultStep:
    """Fault-plan trigger point for the named kernel launches.

    Placed by the instrumentation pass immediately *before* the launch it
    covers (one entry per member for a fused group), so a due
    ``raise:<kernel>:<n>`` spec aborts before the kernel — or the whole
    fused traversal — runs, exactly as the per-method proxy did unfused.
    A run without resilience never executes this step.
    """

    ops: tuple[str, ...]


@dataclass(frozen=True)
class GuardStep:
    """Detection point placed after a reduction's scalar is available.

    ``guard`` names the environment key whose value is isfinite-checked
    (raising :class:`CorruptionError` under ``label``), ``observe`` feeds
    a residual into the divergence monitor, and ``tick`` advances the
    global iteration count that drives field-fault injection and periodic
    checkpoints.  For fused groups the guards land at the group boundary:
    member bodies run back-to-back with no intervening scalar use, so
    checking afterwards is observationally identical to the unfused order.
    """

    guard: str | None = None
    label: str | None = None
    observe: str | None = None
    tick: bool = False


@dataclass
class CompiledKernel:
    """A codegen-lowered :class:`KernelCall` or :class:`FusedGroup`.

    Produced by :mod:`repro.models.codegen`: ``fn`` is one generated (and
    module-level cached) Python function that runs every member body as
    vectorised NumPy over the port's device arrays — no per-cell Python
    frames, no per-slab dispatch.  ``launches`` pre-records the trace
    events the interpreted path would have emitted (one launch per member
    call, or the single fused launch), so launch accounting is identical
    either way.  ``argv`` holds the members' static argument tuples;
    executions only re-resolve them when ``has_binds`` is set.
    """

    calls: tuple[KernelCall, ...]
    fn: Callable[..., tuple]
    launches: tuple[tuple[str, KernelSpec | None], ...]
    argv: tuple[tuple[Any, ...], ...]
    has_binds: bool
    source: str = field(repr=False, default="")


Step = Any  # KernelCall | HaloStep | ... | FusedGroup | FaultStep | GuardStep


def audit_fusion(calls: tuple[KernelCall, ...]) -> None:
    """Dataflow audit of a (candidate) fused group; raises on a hazard.

    Member bodies execute in original order *per cell*, so same-cell
    read-after-write (a member reading a field an earlier member wrote)
    and write-after-write (two members writing the same field) are both
    legal — the later body observes exactly the values the unfused
    sequence would produce.  The two genuine hazards are the *stencil*
    orderings: a member's neighbour read of any field another member
    writes, in either direction, would observe mid-traversal state on a
    cell-parallel port.  ``_can_fuse`` refuses such candidates during
    compilation; this audit re-checks every constructed group (including
    hand-built ones in tests), making an illegal group unrepresentable.
    """
    outs: set[str] = set()
    for idx, cand in enumerate(calls):
        spec = cand.spec
        if not spec.fusable:
            raise ModelError(
                f"illegal fusion: '{cand.op}' is not a fusable operation"
            )
        for arg in cand.args:
            if isinstance(arg, Bind) and arg.key in outs:
                raise ModelError(
                    f"illegal fusion: '{cand.op}' binds ${arg.key}, "
                    f"produced by an earlier member of the same group"
                )
        if cand.out is not None:
            outs.add(cand.out)
        cand_writes = set(spec.written(cand.args))
        cand_stencil = set(spec.stencil_reads)
        for other in calls[:idx]:
            o_spec = other.spec
            o_writes = set(o_spec.written(other.args))
            if cand_stencil & o_writes:
                raise ModelError(
                    f"illegal fusion: '{cand.op}' stencil-reads "
                    f"{sorted(cand_stencil & o_writes)} written by "
                    f"'{other.op}' in the same group"
                )
            if set(o_spec.stencil_reads) & cand_writes:
                raise ModelError(
                    f"illegal fusion: '{other.op}' stencil-reads "
                    f"{sorted(set(o_spec.stencil_reads) & cand_writes)} "
                    f"written later by '{cand.op}' in the same group"
                )


def fused_spec(calls: tuple[KernelCall, ...]) -> KernelSpec:
    """Synthesised :class:`KernelSpec` for a fused traversal.

    Costs follow the produced-set model: a field counts as a read only
    when no earlier member of the group wrote it (it is already in
    registers/cache for the fused loop body), writes are the union, flops
    simply add.  The fused launch is traced under ``fused:<k1>+<k2>+...``.
    """
    readset: list[str] = []
    writeset: list[str] = []
    produced: set[str] = set()
    flops = 0
    reduction = False
    for call in calls:
        op = call.spec
        for name in op.read_fields(call.args):
            if name not in produced and name not in readset:
                readset.append(name)
        for name in op.written(call.args):
            produced.add(name)
            if name not in writeset:
                writeset.append(name)
        flops += op.spec().flops
        reduction = reduction or op.spec().has_reduction
    name = "fused:" + "+".join(OPS[c.op].kernel for c in calls)
    first = calls[0].spec.spec()
    return KernelSpec(
        name=name,
        cls=first.cls,
        reads=len(readset),
        writes=len(writeset),
        flops=flops,
        has_reduction=reduction,
        description="fused elementwise traversal",
    )


# --------------------------------------------------------------------- #
# the plan
# --------------------------------------------------------------------- #
def _can_fuse(group: list[KernelCall], cand: KernelCall) -> bool:
    """True when ``cand`` may join ``group`` in one traversal.

    Legality: no member's writes may feed the candidate's *stencil* reads
    (neighbour cells would see updated values mid-traversal) and vice
    versa; same-cell dataflow is safe because members run in order per
    cell.  A candidate whose late-bound scalar (:class:`Bind`) is produced
    by a group member's reduction must also stay out — the scalar does not
    exist until the group completes.
    """
    spec = cand.spec
    if not spec.fusable:
        return False
    cand_writes = set(spec.written(cand.args))
    cand_stencil = set(spec.stencil_reads)
    outs = {m.out for m in group if m.out is not None}
    for m in group:
        m_spec = m.spec
        m_writes = set(m_spec.written(m.args))
        if cand_stencil & m_writes:
            return False
        if set(m_spec.stencil_reads) & cand_writes:
            return False
    for arg in cand.args:
        if isinstance(arg, Bind) and arg.key in outs:
            return False
    return True


def _guard_for(call: KernelCall) -> GuardStep | None:
    """The detection step the instrumentation pass places after ``call``.

    Mirrors the historical ``GuardedPort`` hook table: which reductions
    are isfinite-guarded (and under which label), which feed the residual
    monitor, and which calls complete a solver iteration.
    """
    op = call.op
    if op == "cg_calc_ur":
        return GuardStep(
            guard=call.out, label=call.out, observe=call.out, tick=True
        )
    if op == "jacobi_iterate":
        return GuardStep(guard=call.out, label="jacobi_change", tick=True)
    if op == "cheby_iterate":
        return GuardStep(tick=True)
    if call.out is None:
        return None
    if op in ("cg_init", "cg_calc_w"):
        return GuardStep(guard=call.out, label=call.out)
    if op == "norm2_field":
        name = call.args[0]
        return GuardStep(
            guard=call.out,
            label=f"norm2({name})",
            observe=call.out if name == F.R else None,
        )
    if op == "dot_fields":
        return GuardStep(
            guard=call.out, label=f"dot({call.args[0]},{call.args[1]})"
        )
    return None


def _overlap_steps(steps: list[Step]) -> list[Step]:
    """Pair each legal adjacent (HaloStep, sweep) into an OverlapStep.

    Runs after fusion and before instrumentation, so a hoisted halo next
    to the fused group it was lifted over is itself a candidate pair.
    Pairs the legality pass refuses (see
    :func:`repro.models.overlap.overlap_reason`) stay as-is — overlap
    never changes results, only which steps can hide their exchange.
    """
    # Imported lazily: the overlap module builds on the IR defined here.
    from repro.models.overlap import overlap_reason

    out: list[Step] = []
    i = 0
    while i < len(steps):
        step = steps[i]
        nxt = steps[i + 1] if i + 1 < len(steps) else None
        if (
            isinstance(step, HaloStep)
            and isinstance(nxt, (KernelCall, FusedGroup))
            and overlap_reason(step, nxt) is None
        ):
            out.append(OverlapStep(step, nxt))
            i += 2
        else:
            out.append(step)
            i += 1
    return out


def _instrument(steps: list[Step]) -> list[Step]:
    """Weave fault-trigger and guard steps into a compiled step list.

    Runs *after* fusion, so the triggers/guards land at fusion-group
    boundaries: a group's fault checks all fire before the traversal, its
    reduction guards after it.  The pass is pure plan rewriting — a run
    without resilience never compiles an instrumented variant.
    """
    out: list[Step] = []
    for step in steps:
        if isinstance(step, KernelCall):
            out.append(FaultStep((step.op,)))
            out.append(step)
            guard = _guard_for(step)
            if guard is not None:
                out.append(guard)
        elif isinstance(step, FusedGroup):
            out.append(FaultStep(tuple(c.op for c in step.calls)))
            out.append(step)
            for call in step.calls:
                guard = _guard_for(call)
                if guard is not None:
                    out.append(guard)
        elif isinstance(step, HaloStep):
            out.append(FaultStep(("update_halo",)))
            out.append(step)
        elif isinstance(step, OverlapStep):
            # Same trigger/guard sequence the unoverlapped pair gets:
            # halo fault point, member fault points, then the member
            # guards once the overlapped execution completes.
            out.append(FaultStep(("update_halo",)))
            out.append(FaultStep(tuple(c.op for c in step.calls)))
            out.append(step)
            for call in step.calls:
                guard = _guard_for(call)
                if guard is not None:
                    out.append(guard)
        else:
            out.append(step)
    return out


@dataclass
class Plan:
    """A named, immutable step sequence with cached compiled variants."""

    name: str
    steps: tuple[Step, ...]
    _compiled: dict[tuple[bool, bool, bool, bool, bool], list[Step]] = field(
        default_factory=dict, repr=False, compare=False
    )

    def compiled(
        self,
        fuse: bool,
        transparent_barriers: bool = False,
        instrument: bool = False,
        codegen: bool = False,
        overlap: bool = False,
    ) -> list[Step]:
        """The executable step list, fused when ``fuse`` is set.

        Compilation happens once per (fuse, transparency, instrument,
        codegen, overlap) tuple and is cached — CG/Chebyshev/PPCG inner
        loops replay the same compiled list every iteration instead of
        rebuilding their call sequence.  Pass order: ``fuse`` first,
        then ``overlap`` pairs exchanges with the (possibly fused) sweep
        behind them, ``instrument`` weaves resilience fault/guard steps
        around the result (see :func:`_instrument`), and ``codegen``
        finally lowers the remaining plain kernel calls and fused groups
        to generated NumPy functions (:mod:`repro.models.codegen`),
        leaving halo/scalar/guard/overlap steps interpreted.
        """
        key = (
            bool(fuse),
            bool(transparent_barriers),
            bool(instrument),
            bool(codegen),
            bool(overlap),
        )
        cached = self._compiled.get(key)
        if cached is None:
            cached = self._compile(key[0], key[1]) if fuse else list(self.steps)
            if key[4]:
                cached = _overlap_steps(cached)
            if key[2]:
                cached = _instrument(cached)
            if key[3]:
                # Imported lazily: codegen builds on the IR in this module.
                from repro.models.codegen import lower_steps

                cached = lower_steps(cached)
            self._compiled[key] = cached
        return cached

    def _compile(self, fuse: bool, transparent: bool) -> list[Step]:
        out: list[Step] = []
        group: list[KernelCall] = []
        #: Every field the open group reads (incl. stencil) or writes.
        group_fields: set[str] = set()
        hoisted: list[Step] = []

        def flush() -> None:
            out.extend(hoisted)
            hoisted.clear()
            if len(group) >= 2:
                out.append(FusedGroup(tuple(group)))
            else:
                out.extend(group)
            group.clear()
            group_fields.clear()

        for step in self.steps:
            if isinstance(step, KernelCall) and step.spec.fusable:
                if group and not _can_fuse(group, step):
                    flush()
                group.append(step)
                spec = step.spec
                group_fields.update(spec.read_fields(step.args))
                group_fields.update(spec.stencil_reads)
                group_fields.update(spec.written(step.args))
            elif isinstance(step, BarrierStep) and transparent and group:
                # Host ports: the data region is a no-op, so the barrier
                # may cross the group without changing observable order.
                hoisted.append(step)
            elif (
                isinstance(step, HaloStep)
                and group
                and not set(step.names) & group_fields
            ):
                # Fusion across halos: the exchange touches only fields
                # the open group neither reads nor writes, so it commutes
                # with every member and may run before the fused
                # traversal, letting the calls on either side fuse.
                hoisted.append(step)
            else:
                flush()
                out.append(step)
        flush()
        return out

    # ------------------------------------------------------------------ #
    def describe(
        self,
        fuse: bool = False,
        transparent_barriers: bool = False,
        instrument: bool = False,
        codegen: bool = False,
        overlap: bool = False,
    ) -> str:
        """Human-readable dump (the ``repro plan`` CLI output)."""
        header = f"plan {self.name} (fuse={'on' if fuse else 'off'}"
        if instrument:
            header += ", instrumented"
        if codegen:
            header += ", codegen"
        if overlap:
            header += ", overlap"
        lines = [header + "):"]
        for step in self.compiled(
            fuse, transparent_barriers, instrument, codegen, overlap
        ):
            lines.append(f"  {render_step(step)}")
        return "\n".join(lines)


def _render_arg(arg: Any) -> str:
    if isinstance(arg, Bind):
        return f"${arg.key}"
    return repr(arg)


def render_step(step: Step) -> str:
    if isinstance(step, OverlapStep):
        return (
            f"overlap {{ {render_step(step.halo)} || interior-first "
            f"{render_step(step.body)} }}"
        )
    if isinstance(step, CompiledKernel):
        inner = "; ".join(render_step(c) for c in step.calls)
        return f"compiled[{len(step.calls)}]  {{ {inner} }}"
    if isinstance(step, FusedGroup):
        inner = "; ".join(render_step(c) for c in step.calls)
        return f"fused[{len(step.calls)}] {step.spec.name}  {{ {inner} }}"
    if isinstance(step, KernelCall):
        op = step.spec
        args = ", ".join(_render_arg(a) for a in step.args)
        text = f"{step.op}({args})"
        if step.out is not None:
            text = f"{step.out} = {text}"
        notes = []
        if op.reduction:
            notes.append("reduction")
        written = op.written(step.args)
        if written:
            notes.append("writes " + ",".join(written))
        if notes:
            text += "   # " + "; ".join(notes)
        return text
    if isinstance(step, HaloStep):
        return f"update_halo({','.join(step.names)}, depth={step.depth})"
    if isinstance(step, ScalarStep):
        return f"{step.out} = scalar({step.fn.__name__})"
    if isinstance(step, BarrierStep):
        return f"barrier {step.method}()"
    if isinstance(step, FaultStep):
        return f"fault-point({', '.join(step.ops)})"
    if isinstance(step, GuardStep):
        parts = []
        if step.guard is not None:
            parts.append(f"isfinite(${step.guard} as {step.label!r})")
        if step.observe is not None:
            parts.append(f"observe_residual(${step.observe})")
        if step.tick:
            parts.append("iteration_complete")
        return "guard " + "; ".join(parts)
    return repr(step)


# --------------------------------------------------------------------- #
# the liveness pass
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class LiveEvent:
    """One field-touching point of a canonical solve timeline.

    ``uses`` are read before ``defs`` are written, except that an
    operation's stencil reads and its writes genuinely interleave cell
    by cell — which is why interference below treats same-event use and
    def as conflicting.
    """

    index: int
    plan: str
    step: int
    label: str
    uses: tuple[str, ...]
    defs: tuple[str, ...]


#: Synthetic terminal event: the driver's out-of-plan consumers (the
#: ``field_summary`` reduction, VTK dumps, ``app.field(u)`` probes) read
#: these fields after the epilogue, so they stay live to the cycle end.
_OBSERVE_USES = (F.DENSITY, F.ENERGY1, F.U)


def _step_dataflow(step: Step) -> list[tuple[str, tuple[str, ...], tuple[str, ...]]]:
    """(label, uses, defs) entries for one raw plan step."""
    if isinstance(step, KernelCall):
        op = step.spec
        uses = tuple(
            dict.fromkeys(
                op.read_fields(step.args) + op.stencil_reads + op.scratch_writes
            )
        )
        defs = tuple(dict.fromkeys(op.written(step.args) + op.scratch_writes))
        return [(step.op, uses, defs)]
    if isinstance(step, HaloStep):
        # The reflective exchange derives ghost layers from the interior:
        # a use (of the interior) and a def (of the ghosts) of each name.
        return [(f"halo({','.join(step.names)})", step.names, step.names)]
    return []


def plan_events(plan: Plan) -> list[tuple[str, int, str, tuple, tuple]]:
    """The (plan, step, label, uses, defs) rows of one plan's raw steps."""
    rows = []
    for idx, step in enumerate(plan.steps):
        for label, uses, defs in _step_dataflow(step):
            rows.append((plan.name, idx, label, uses, defs))
    return rows


def plan_live_in(plan: Plan) -> frozenset[str]:
    """Fields ``plan`` reads before (re)defining them."""
    live_in: set[str] = set()
    seen: set[str] = set()
    for _, _, _, uses, defs in plan_events(plan):
        live_in.update(u for u in uses if u not in seen)
        seen.update(defs)
    return frozenset(live_in)


@dataclass(frozen=True)
class FieldLiveness:
    """Per-field live ranges and arena slot assignment for one solve cycle.

    Computed over a canonical timeline (prologue, solver fragments with
    loop bodies unrolled twice, epilogue, observe) that repeats every
    timestep, so liveness wraps around: the exit live set is the
    timeline's own use-before-def set.
    """

    events: tuple[LiveEvent, ...]
    #: Values that must survive at each event: live-in ∪ defs (same-event
    #: use/def conflict by construction — stencil sweeps interleave).
    live: tuple[frozenset[str], ...]
    #: Fields read by the cycle before it redefines them (live across the
    #: timestep boundary; never arena-eligible).
    live_in: frozenset[str]
    #: WORK-role fields whose every cycle fully re-derives them — the
    #: arena candidate set, in slot-assignment order.
    arena_fields: tuple[str, ...]
    #: Arena slot per eligible field (interference-graph coloring).
    slots: dict[str, int]
    slot_count: int
    #: Eligible fields every *consuming plan* defines before reading — a
    #: NaN poison of their slot after any plan that touches them can
    #: never be observed by a correct run.
    self_contained: frozenset[str]
    #: plan name -> fields safely poisonable when that plan completes.
    releases: dict[str, tuple[str, ...]]

    def interfere(self, a: str, b: str) -> bool:
        return any(a in p and b in p for p in self.live)

    def segments(self, name: str) -> list[tuple[int, int]]:
        """Maximal [start, end] event-index runs where ``name`` is live."""
        out: list[tuple[int, int]] = []
        for i, p in enumerate(self.live):
            if name in p:
                if out and out[-1][1] == i - 1:
                    out[-1] = (out[-1][0], i)
                else:
                    out.append((i, i))
        return out


def compute_liveness(timeline: Sequence[Plan]) -> FieldLiveness:
    """Live ranges + arena slots for a canonical cyclic plan timeline.

    ``timeline`` is the ordered plan sequence of one timestep with loop
    bodies repeated twice — the second unroll gives every loop position a
    successor iteration, so loop-carried fields (``p`` across CG
    iterations, ``sd`` across Chebyshev iterations) interfere exactly as
    they do mid-loop.
    """
    rows: list[tuple[str, int, str, tuple, tuple]] = []
    for plan in timeline:
        rows.extend(plan_events(plan))
    rows.append(("<observe>", 0, "field_summary/output", _OBSERVE_USES, ()))
    events = tuple(
        LiveEvent(i, p, s, label, uses, defs)
        for i, (p, s, label, uses, defs) in enumerate(rows)
    )

    # Cycle-carried fields: read before any def in a forward scan.
    live_in: set[str] = set()
    seen: set[str] = set()
    for ev in events:
        live_in.update(u for u in ev.uses if u not in seen)
        seen.update(ev.defs)

    # Backward pass: the timeline repeats, so its exit live set is its
    # own entry live set.
    live_sets: list[frozenset[str]] = [frozenset()] * len(events)
    live = set(live_in)
    for ev in reversed(events):
        point = (live | set(ev.defs)) | set(ev.uses)
        live_sets[ev.index] = frozenset(point)
        live -= set(ev.defs)
        live |= set(ev.uses)

    touched = {n for ev in events for n in ev.uses + ev.defs}
    eligible = [
        n
        for n in F.FIELD_ORDER
        if F.role(n) is F.FieldRole.WORK and n not in live_in
    ]

    # First live position orders the greedy coloring (classic left-edge).
    def first_pos(name: str) -> int:
        for i, p in enumerate(live_sets):
            if name in p:
                return i
        return len(live_sets)  # never live: shares with anything

    slots: dict[str, int] = {}
    slot_members: dict[int, list[str]] = {}
    for name in sorted(eligible, key=first_pos):
        s = 0
        while any(
            any(name in p and m in p for p in live_sets)
            for m in slot_members.get(s, ())
        ):
            s += 1
        slots[name] = s
        slot_members.setdefault(s, []).append(name)

    # Self-contained fields: every plan that uses them defines them
    # first, so their value never crosses a plan boundary and a poison
    # after any touching plan is unobservable regardless of control flow.
    all_live_in: set[str] = set(_OBSERVE_USES)
    for plan in timeline:
        all_live_in |= plan_live_in(plan)
    self_contained = frozenset(
        n for n in eligible if n in touched and n not in all_live_in
    )

    releases: dict[str, tuple[str, ...]] = {}
    for plan in timeline:
        if plan.name in releases:
            continue
        plan_touched = {
            n for _, _, _, uses, defs in plan_events(plan) for n in uses + defs
        }
        dead: list[str] = []
        for n in self_contained:
            if n not in plan_touched:
                continue
            # Poisoning fills the whole slot: only safe when every other
            # field sharing it is never touched by this solver at all.
            partners = [m for m in slot_members[slots[n]] if m != n]
            if all(m not in touched for m in partners):
                dead.append(n)
        if dead:
            releases[plan.name] = tuple(dead)

    return FieldLiveness(
        events=events,
        live=tuple(live_sets),
        live_in=frozenset(live_in),
        arena_fields=tuple(sorted(eligible, key=first_pos)),
        slots=slots,
        slot_count=len(slot_members),
        self_contained=self_contained,
        releases=releases,
    )


# --------------------------------------------------------------------- #
# the executor
# --------------------------------------------------------------------- #
class PlanExecutor:
    """Replays compiled plans against one port.

    With fusion off every :class:`KernelCall` goes through the port's
    *public* kernel method — preserving the per-model trace structure and
    any wrapper a harness has installed (lockstep comparison).  With
    fusion on, eligible groups dispatch through ``port.dispatch_fused``
    as one traced launch whose member bodies run in original order, so
    results stay bitwise-identical.

    With a resilience manager attached the executor compiles the
    *instrumented* plan variant (fault triggers + scalar guards at fusion
    boundaries) and journals every step's write set and scalar output
    into the manager — feeding incremental checkpoints and scalar-state
    capture.  Without one, the disabled path pays exactly nothing.

    A flag a port cannot honour (``codegen`` on a decomposed port,
    ``overlap`` on a proxy that intercepts public kernel calls) is not
    silently dropped: the degradation is recorded in :attr:`fallbacks`
    so the driver can warn and the run report can show it.
    """

    def __init__(
        self,
        port: Any,
        fuse: bool = False,
        resilience: Any = None,
        codegen: bool = False,
        overlap: bool = False,
    ) -> None:
        self.port = port
        self.fuse = bool(fuse) and getattr(port, "supports_fusion", False)
        self.resilience = resilience
        #: Requested-but-unsupported flag degradations, in request order.
        self.fallbacks: list[str] = []
        self.codegen = bool(codegen) and getattr(port, "supports_codegen", False)
        if codegen and not self.codegen:
            self.fallbacks.append(
                f"codegen requested but port "
                f"'{getattr(port, 'model_name', '?')}' does not support it "
                f"(supports_codegen=False); running interpreted kernels"
            )
        self.overlap = bool(overlap) and getattr(port, "supports_overlap", False)
        if overlap and not self.overlap:
            self.fallbacks.append(
                f"overlap requested but port "
                f"'{getattr(port, 'model_name', '?')}' cannot split "
                f"interior/boundary sweeps (supports_overlap=False); "
                f"halo exchanges stay synchronous"
            )
        # Imported lazily: the overlap module builds on the IR here.
        from repro.models.overlap import CommStats, comm_cost_ms, execute_overlap

        #: Deterministic exposed/hidden communication ledger for this
        #: executor's runs (surfaced as ``RunResult.comm``).
        self.comm = CommStats()
        self._comm_cost_ms = comm_cost_ms
        self._execute_overlap = execute_overlap
        #: Per-(names, depth) modelled wire cost, so per-step accounting
        #: is a dict lookup instead of a decomposition walk.
        self._halo_costs: dict[tuple, float] = {}
        # Per-run codegen cache telemetry: snapshot the process-global
        # counters now so campaign runs and harness experiments report
        # their *own* hit/miss rates while the global keeps aggregating.
        from repro.models.codegen import CACHE_STATS

        self._codegen_stats_base = (CACHE_STATS["hits"], CACHE_STATS["misses"])
        #: Batched multi-deck execution: when a conductor is attached
        #: (``repro.core.batch``) every :class:`CompiledKernel` dispatch
        #: rendezvouses there so one generated function can sweep all
        #: lanes' fields at once.  ``None`` costs one attribute test.
        self.batch_conductor: Any = None
        self.batch_lane: int = 0
        # Arena poison bookkeeping — see :meth:`attach_arena`.
        self._arena: Any = None
        self._arena_lane: int = 0
        self._poison_after: dict[str, tuple[str, ...]] = {}

    def attach_arena(
        self,
        arena: Any,
        lane: int,
        releases: Mapping[str, tuple[str, ...]] | None = None,
    ) -> None:
        """Wire an arena lane (and optional poison schedule) to this executor.

        ``releases`` maps plan names to the fields whose slots are
        NaN-poisoned when that plan finishes (the liveness pass's
        :attr:`FieldLiveness.releases`): any later read of a dead work
        field then surfaces as a loud non-finite failure instead of a
        silent stale value.
        """
        self._arena = arena
        self._arena_lane = lane
        self._poison_after = dict(releases or {})

    def codegen_cache_stats(self) -> dict[str, int]:
        """Codegen function-cache hits/misses since this executor began.

        The module-level :data:`repro.models.codegen.CACHE_STATS` is a
        process-global aggregate; it used to leak across campaign runs
        and harness experiments, so every run after the first reported
        the previous runs' traffic too.  The per-executor snapshot makes
        per-run rates accurate without resetting the aggregate.
        """
        from repro.models.codegen import CACHE_STATS

        return {
            "hits": CACHE_STATS["hits"] - self._codegen_stats_base[0],
            "misses": CACHE_STATS["misses"] - self._codegen_stats_base[1],
        }

    def _halo_cost(self, names: tuple, depth: int) -> float:
        key = (names, depth)
        cost = self._halo_costs.get(key)
        if cost is None:
            traffic = getattr(self.port, "halo_wire_traffic", None)
            nbytes, messages = traffic(names, depth) if traffic else (0, 0)
            cost = self._comm_cost_ms(nbytes, messages)
            self._halo_costs[key] = cost
        return cost

    def run(
        self, plan: Plan, env: dict[str, float] | None = None
    ) -> dict[str, float]:
        """Execute ``plan``; returns the scalar environment."""
        port = self.port
        m = self.resilience
        env = {} if env is None else env
        transparent = not getattr(port, "has_data_region", False)
        for step in plan.compiled(
            self.fuse, transparent, m is not None, self.codegen, self.overlap
        ):
            if isinstance(step, CompiledKernel):
                # Late-bound scalars are the only per-execution variation;
                # plans without them replay the pre-resolved arg vectors.
                if step.has_binds:
                    argv = tuple(
                        self._resolve(c.args, env) for c in step.calls
                    )
                else:
                    argv = step.argv
                if self.batch_conductor is not None:
                    results = self.batch_conductor.submit(
                        self.batch_lane, port, step, argv
                    )
                else:
                    results = port.dispatch_compiled(step, argv)
                for call, value in zip(step.calls, results):
                    self._store(call, value, env)
                if m is not None:
                    for call, args in zip(step.calls, argv):
                        m.note_writes(call.spec.written(args))
            elif isinstance(step, FusedGroup):
                # The spec and the Bind scan are compile-time constants on
                # the group; only plans with late-bound scalars pay the
                # per-execution call rebuild.
                if step.has_binds:
                    calls = tuple(
                        KernelCall(c.op, self._resolve(c.args, env), c.out, c.finite)
                        for c in step.calls
                    )
                else:
                    calls = step.calls
                results = port.dispatch_fused(calls, step.spec)
                for call, value in zip(calls, results):
                    self._store(call, value, env)
                if m is not None:
                    for call in calls:
                        m.note_writes(call.spec.written(call.args))
            elif isinstance(step, KernelCall):
                args = self._resolve(step.args, env)
                value = getattr(port, step.op)(*args)
                self._store(step, value, env)
                if m is not None:
                    m.note_writes(step.spec.written(args))
            elif isinstance(step, HaloStep):
                port.update_halo(step.names, depth=step.depth)
                self.comm.record_halo(
                    plan.name,
                    step.names,
                    step.depth,
                    self._halo_cost(step.names, step.depth),
                )
                if m is not None:
                    m.note_writes(step.names)
            elif isinstance(step, OverlapStep):
                if step.has_binds:
                    argv = tuple(
                        self._resolve(c.args, env) for c in step.calls
                    )
                else:
                    argv = step.argv
                results = self._execute_overlap(
                    port, step, argv, self.comm, plan.name
                )
                for call, value in zip(step.calls, results):
                    self._store(call, value, env)
                if m is not None:
                    m.note_writes(step.halo.names)
                    for call, args in zip(step.calls, argv):
                        m.note_writes(call.spec.written(args))
            elif isinstance(step, ScalarStep):
                value = step.fn(env)
                if step.finite:
                    value = check_finite(step.out, value)
                env[step.out] = value
                if m is not None:
                    m.note_scalar(step.out, value)
            elif isinstance(step, BarrierStep):
                getattr(port, step.method)()
            elif isinstance(step, FaultStep):
                if m is not None:
                    for op in step.ops:
                        m.kernel_call(op)
            elif isinstance(step, GuardStep):
                if m is not None:
                    if step.guard is not None:
                        m.guard_scalar(step.label, env[step.guard])
                    if step.observe is not None:
                        m.observe_residual(env[step.observe])
                    if step.tick:
                        m.iteration_complete(port)
            else:  # pragma: no cover - plans are built from known steps
                raise TypeError(f"unknown plan step {step!r}")
        if self._poison_after:
            dead = self._poison_after.get(plan.name)
            if dead:
                self._arena.poison(dead, self._arena_lane, port)
        return env

    @staticmethod
    def _resolve(args: tuple[Any, ...], env: Mapping[str, float]) -> tuple[Any, ...]:
        return tuple(env[a.key] if isinstance(a, Bind) else a for a in args)

    def _store(self, call: KernelCall, value: Any, env: dict[str, float]) -> None:
        if call.out is None:
            return
        if call.finite:
            value = check_finite(call.out, value)
        env[call.out] = value
        if self.resilience is not None:
            self.resilience.note_scalar(call.out, value)


def executor_for(port: Any) -> PlanExecutor:
    """The executor attached to ``port``, or a fusion-off fallback.

    The driver configures and attaches one as ``port.plan_executor``;
    solver code driving a bare port (unit tests, harnesses) gets default
    semantics — every call through the public kernel methods, unfused.

    The attached executor is only honoured when it drives *this exact
    object*: a delegating proxy (GuardedPort, lockstep harness) inherits
    ``plan_executor`` from the port it wraps, and reusing that executor
    would dispatch straight to the inner port, silently bypassing the
    proxy's interception.
    """
    ex = getattr(port, "plan_executor", None)
    if ex is not None and ex.port is port:
        return ex
    return PlanExecutor(port)
