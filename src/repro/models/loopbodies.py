"""The OpenMP-C TeaLeaf loop bodies shared by the directive-based ports.

The paper's OpenMP 4.0 port "added a target region to each of the
performance critical functions" of the OpenMP C codebase, and the OpenACC
port "was possible to use the OpenMP 4.0 codebase as a starting point,
changing the directives but maintaining the same data transitions" (§3.1,
§3.2).  This module is that shared C codebase: each function is one loop
nest over a contiguous slab of interior rows ``[r0, r1)``, written exactly
as the directive models parallelise it (outer rows distributed across
threads/gangs, inner row vectorised).

Kokkos, RAJA, OpenCL and CUDA do **not** use these bodies — their ports
re-express the kernels through their own abstractions, as the paper's did.

All bodies take raw arrays plus the halo depth ``h`` and interior width
``nx``; none of them reads or writes outside rows ``[h+r0-1, h+r1+1)``,
which is what makes the static row decomposition race-free.  Update kernels
that read neighbour values of an array they also write are split into two
sweeps (matvec sweep, then axpy sweep), mirroring the reference kernels.
"""

from __future__ import annotations

import numpy as np

from repro.models.stencil import face_coefficient, row_diag, row_matvec


def _rows(h: int, r0: int, r1: int, dk: int = 0) -> slice:
    return slice(h + r0 + dk, h + r1 + dk)


def _cols(h: int, nx: int, dj: int = 0) -> slice:
    return slice(h + dj, h + nx + dj)


def matvec_slab(
    out: np.ndarray,
    v: np.ndarray,
    kx: np.ndarray,
    ky: np.ndarray,
    h: int,
    nx: int,
    r0: int,
    r1: int,
) -> None:
    """out[slab] = A v over interior rows [r0, r1)."""
    I = _rows(h, r0, r1)
    J = _cols(h, nx)
    Jp = _cols(h, nx, 1)
    Jm = _cols(h, nx, -1)
    Ip = _rows(h, r0, r1, 1)
    Im = _rows(h, r0, r1, -1)
    out[I, J] = row_matvec(v, kx, ky, I, Im, Ip, J, Jm, Jp)


def tea_leaf_init_slab(
    density: np.ndarray,
    energy: np.ndarray,
    u: np.ndarray,
    u0: np.ndarray,
    kx: np.ndarray,
    ky: np.ndarray,
    rx: float,
    ry: float,
    recip: bool,
    h: int,
    nx: int,
    r0: int,
    r1: int,
) -> None:
    """u = u0 = energy*density; face coefficients from density (harmonic)."""
    I = _rows(h, r0, r1)
    J = _cols(h, nx)
    Jm = _cols(h, nx, -1)
    Im = _rows(h, r0, r1, -1)

    u[I, J] = energy[I, J] * density[I, J]
    u0[I, J] = u[I, J]

    if recip:
        wc = 1.0 / density[I, J]
        wx = 1.0 / density[I, Jm]
        wy = 1.0 / density[Im, J]
    else:
        wc = density[I, J]
        wx = density[I, Jm]
        wy = density[Im, J]
    kx[I, J] = face_coefficient(wx, wc, rx)
    ky[I, J] = face_coefficient(wy, wc, ry)


def zero_boundary_coefficients(
    kx: np.ndarray, ky: np.ndarray, h: int, nx: int, ny: int
) -> None:
    """Zero wall-face coefficients: the reflective (zero-flux) boundary."""
    kx[:, : h + 1] = 0.0
    kx[:, h + nx :] = 0.0
    ky[: h + 1, :] = 0.0
    ky[h + ny :, :] = 0.0


def residual_slab(
    r: np.ndarray,
    u0: np.ndarray,
    u: np.ndarray,
    kx: np.ndarray,
    ky: np.ndarray,
    h: int,
    nx: int,
    r0: int,
    r1: int,
) -> None:
    """r = u0 - A u."""
    matvec_slab(r, u, kx, ky, h, nx, r0, r1)
    I = _rows(h, r0, r1)
    J = _cols(h, nx)
    r[I, J] = u0[I, J] - r[I, J]


def cg_init_slab(
    w: np.ndarray,
    r: np.ndarray,
    p: np.ndarray,
    u: np.ndarray,
    u0: np.ndarray,
    kx: np.ndarray,
    ky: np.ndarray,
    h: int,
    nx: int,
    r0: int,
    r1: int,
) -> np.ndarray:
    """w = A u; r = u0 - w; p = r; returns per-cell rro contributions."""
    matvec_slab(w, u, kx, ky, h, nx, r0, r1)
    I = _rows(h, r0, r1)
    J = _cols(h, nx)
    r[I, J] = u0[I, J] - w[I, J]
    p[I, J] = r[I, J]
    rr = r[I, J]
    return (rr * rr).ravel()


def cg_calc_w_slab(
    w: np.ndarray,
    p: np.ndarray,
    kx: np.ndarray,
    ky: np.ndarray,
    h: int,
    nx: int,
    r0: int,
    r1: int,
) -> np.ndarray:
    """w = A p; returns per-cell pw = p.w contributions."""
    matvec_slab(w, p, kx, ky, h, nx, r0, r1)
    I = _rows(h, r0, r1)
    J = _cols(h, nx)
    return (p[I, J] * w[I, J]).ravel()


def cg_calc_ur_slab(
    u: np.ndarray,
    r: np.ndarray,
    p: np.ndarray,
    w: np.ndarray,
    alpha: float,
    h: int,
    nx: int,
    r0: int,
    r1: int,
) -> np.ndarray:
    """u += alpha p; r -= alpha w; returns per-cell rrn contributions."""
    I = _rows(h, r0, r1)
    J = _cols(h, nx)
    u[I, J] += alpha * p[I, J]
    r[I, J] -= alpha * w[I, J]
    rr = r[I, J]
    return (rr * rr).ravel()


def cg_calc_p_slab(
    p: np.ndarray,
    r: np.ndarray,
    beta: float,
    h: int,
    nx: int,
    r0: int,
    r1: int,
) -> None:
    """p = r + beta p."""
    I = _rows(h, r0, r1)
    J = _cols(h, nx)
    p[I, J] = r[I, J] + beta * p[I, J]


def cheby_init_slab(
    r: np.ndarray,
    sd: np.ndarray,
    u: np.ndarray,
    u0: np.ndarray,
    w: np.ndarray,
    kx: np.ndarray,
    ky: np.ndarray,
    theta: float,
    h: int,
    nx: int,
    r0: int,
    r1: int,
) -> None:
    """r = u0 - A u; sd = r/theta (u update happens in the second sweep)."""
    matvec_slab(w, u, kx, ky, h, nx, r0, r1)
    I = _rows(h, r0, r1)
    J = _cols(h, nx)
    r[I, J] = u0[I, J] - w[I, J]
    sd[I, J] = r[I, J] / theta


def cheby_calc_u_slab(
    u: np.ndarray,
    sd: np.ndarray,
    h: int,
    nx: int,
    r0: int,
    r1: int,
) -> None:
    """u += sd (second sweep of init and iterate)."""
    I = _rows(h, r0, r1)
    J = _cols(h, nx)
    u[I, J] += sd[I, J]


def cheby_iterate_r_slab(
    r: np.ndarray,
    sd: np.ndarray,
    w: np.ndarray,
    kx: np.ndarray,
    ky: np.ndarray,
    h: int,
    nx: int,
    r0: int,
    r1: int,
) -> None:
    """First sweep: r -= A sd (sd read-only, so slabs are race-free)."""
    matvec_slab(w, sd, kx, ky, h, nx, r0, r1)
    I = _rows(h, r0, r1)
    J = _cols(h, nx)
    r[I, J] -= w[I, J]


def cheby_iterate_sd_slab(
    sd: np.ndarray,
    r: np.ndarray,
    u: np.ndarray,
    alpha: float,
    beta: float,
    h: int,
    nx: int,
    r0: int,
    r1: int,
) -> None:
    """Second sweep: sd = alpha sd + beta r; u += sd."""
    I = _rows(h, r0, r1)
    J = _cols(h, nx)
    sd[I, J] = alpha * sd[I, J] + beta * r[I, J]
    u[I, J] += sd[I, J]


def ppcg_precon_init_slab(
    w: np.ndarray,
    sd: np.ndarray,
    z: np.ndarray,
    r: np.ndarray,
    theta: float,
    h: int,
    nx: int,
    r0: int,
    r1: int,
) -> None:
    """w = r; sd = w/theta; z = sd."""
    I = _rows(h, r0, r1)
    J = _cols(h, nx)
    w[I, J] = r[I, J]
    sd[I, J] = w[I, J] / theta
    z[I, J] = sd[I, J]


def cg_precon_slab(
    z: np.ndarray,
    r: np.ndarray,
    kx: np.ndarray,
    ky: np.ndarray,
    h: int,
    nx: int,
    r0: int,
    r1: int,
) -> None:
    """z = r / diag(A), the diagonal-Jacobi preconditioner apply."""
    I = _rows(h, r0, r1)
    J = _cols(h, nx)
    Jp = _cols(h, nx, 1)
    Ip = _rows(h, r0, r1, 1)
    z[I, J] = r[I, J] / row_diag(kx, ky, I, Ip, J, Jp)


def jacobi_iterate_slab(
    u: np.ndarray,
    un: np.ndarray,
    u0: np.ndarray,
    kx: np.ndarray,
    ky: np.ndarray,
    h: int,
    nx: int,
    r0: int,
    r1: int,
) -> np.ndarray:
    """u from old copy un: the Jacobi sweep; returns per-cell |u - un|."""
    I = _rows(h, r0, r1)
    J = _cols(h, nx)
    Jp = _cols(h, nx, 1)
    Jm = _cols(h, nx, -1)
    Ip = _rows(h, r0, r1, 1)
    Im = _rows(h, r0, r1, -1)
    diag = row_diag(kx, ky, I, Ip, J, Jp)
    u[I, J] = (
        u0[I, J]
        + kx[I, Jp] * un[I, Jp]
        + kx[I, J] * un[I, Jm]
        + ky[Ip, J] * un[Ip, J]
        + ky[I, J] * un[Im, J]
    ) / diag
    return np.abs(u[I, J] - un[I, J]).ravel()


def finalise_slab(
    energy: np.ndarray,
    u: np.ndarray,
    density: np.ndarray,
    h: int,
    nx: int,
    r0: int,
    r1: int,
) -> None:
    """energy = u / density."""
    I = _rows(h, r0, r1)
    J = _cols(h, nx)
    energy[I, J] = u[I, J] / density[I, J]


def field_summary_slab(
    density: np.ndarray,
    energy: np.ndarray,
    u: np.ndarray,
    cell_volume: float,
    h: int,
    nx: int,
    r0: int,
    r1: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Per-cell (volume, mass, internal energy, temperature) contributions.

    Each term is formed per cell — ``vol * d``, not ``vol * sum(d)`` — so
    the contribution values match the other ports' summary kernels bit for
    bit before the shared deterministic reduction folds them.
    """
    I = _rows(h, r0, r1)
    J = _cols(h, nx)
    d = density[I, J]
    e = energy[I, J]
    vol = np.full(d.size, cell_volume)
    mass = (cell_volume * d).ravel()
    ie = (cell_volume * d * e).ravel()
    temp = (cell_volume * u[I, J]).ravel()
    return vol, mass, ie, temp
