"""OpenACC directive objects.

* :class:`AccDataRegion` — ``#pragma acc data copyin(...) copy(...)
  create(...)``: a lexical scope pinning arrays on the device;
* :func:`kernels_region` — ``#pragma acc kernels present(...)``: one
  offloaded compute region.  The ``present`` check is enforced: naming an
  array that is not device-resident raises, like the runtime error a real
  ``present`` clause produces;
* :func:`loop` — ``#pragma acc loop independent [collapse(n)]`` marker,
  attached to loop bodies for introspection (the paper appends
  ``loop independent`` to every loop and collapses them for the GPU).
"""

from __future__ import annotations

import functools
from contextlib import contextmanager
from typing import Callable, Iterator, Sequence, TypeVar

import numpy as np

from repro.models.openmp.directives import DeviceDataEnvironment
from repro.models.tracing import Trace
from repro.util.errors import ModelError

T = TypeVar("T")


class AccDataRegion:
    """``acc data`` scope with OpenACC copy semantics."""

    def __init__(
        self,
        env: DeviceDataEnvironment,
        copyin: dict[str, np.ndarray] | None = None,
        copyout: dict[str, np.ndarray] | None = None,
        copy: dict[str, np.ndarray] | None = None,
        create: dict[str, np.ndarray] | None = None,
    ) -> None:
        self.env = env
        self._copyin = dict(copyin or {})
        self._copyout = dict(copyout or {})
        self._copy = dict(copy or {})
        self._create = dict(create or {})
        self._entered = False

    def __enter__(self) -> "AccDataRegion":
        if self._entered:
            raise ModelError("acc data region entered twice")
        self._entered = True
        for name, arr in self._copyin.items():
            self.env.map(name, arr, to=True, from_=False)
        for name, arr in self._copy.items():
            self.env.map(name, arr, to=True, from_=True)
        for name, arr in self._copyout.items():
            self.env.map(name, arr, to=False, from_=True)
        for name, arr in self._create.items():
            self.env.map(name, arr, to=False, from_=False)
        return self

    def __exit__(self, *exc) -> None:
        for name in [*self._copyin, *self._copy, *self._copyout, *self._create]:
            self.env.unmap(name)
        self._entered = False


@contextmanager
def kernels_region(
    env: DeviceDataEnvironment,
    trace: Trace,
    name: str,
    present: Sequence[str] = (),
) -> Iterator[DeviceDataEnvironment]:
    """``acc kernels present(...)``: one offloaded region.

    Verifies the ``present`` clause before running the body, mirroring the
    PGI runtime's "data not present" abort.
    """
    for array_name in present:
        if not env.is_mapped(array_name):
            raise ModelError(
                f"acc kernels '{name}': array '{array_name}' is not present "
                "on the device (missing enclosing data region?)"
            )
    trace.region(f"acc_kernels:{name}")
    yield env


def loop(independent: bool = True, collapse: int = 1) -> Callable[[Callable[..., T]], Callable[..., T]]:
    """``acc loop independent collapse(n)`` marker decorator.

    Records the clauses on the loop body; the TeaLeaf OpenACC port marks
    every data-parallel loop ``independent`` and collapses the 2-D nests,
    as §3.2 describes.
    """

    def decorate(fn: Callable[..., T]) -> Callable[..., T]:
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            return fn(*args, **kwargs)

        wrapper.__acc_loop__ = {"independent": independent, "collapse": collapse}  # type: ignore[attr-defined]
        return wrapper

    return decorate
