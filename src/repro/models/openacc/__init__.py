"""OpenACC emulation: data regions and kernels-region semantics (§2.2).

OpenACC's data-movement model is deliberately close to OpenMP 4.0's (the
paper ported TeaLeaf to OpenACC *from* the OpenMP 4.0 codebase, "changing
the directives but maintaining the same data transitions"), so the device
data environment is shared with the OpenMP emulation; this module renames
it into OpenACC vocabulary (``copyin``/``copyout``/``copy``/``create``/
``present``) and adds the ``kernels``/``loop independent collapse`` markers.
"""

from repro.models.openacc.directives import AccDataRegion, kernels_region, loop

__all__ = ["AccDataRegion", "kernels_region", "loop"]
