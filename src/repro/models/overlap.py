"""The async overlap executor: hide halo exchange behind interior compute.

The paper's decomposed MPI+X runs pay the full halo-exchange latency on
every solver iteration — the classic communication/computation overlap
is exactly the optimisation all four programming models leave on the
table.  This module supplies the pieces the plan compiler and executor
need to take it:

* :func:`interior_partition` splits a chunk's interior into a **core**
  (cells whose stencil never reaches a ghost layer) plus up to four
  **boundary strips** of width :data:`STENCIL_REACH`, covering every
  interior cell exactly once for any mesh size and halo depth.
* :data:`OVERLAP_TEMPLATES` gives each overlappable operation a
  region-capable **body** (the elementwise sweep, runnable over the core
  while the exchange is in flight, then over the strips once the ghosts
  have landed) and an optional **epilogue** (scalar updates and
  reductions that need the whole interior, run after the wait).  Bodies
  reuse the exact shared arithmetic helpers the interpreted ports and
  the codegen backend use, over sub-slices of the same full-interior
  expressions, so every cell's bits are identical to the non-overlapped
  run.
* :func:`overlap_reason` is the legality pass: it refuses pairs where a
  body writes an exchanged field (the WAR hazard — a ``depth > 1``
  exchange packs ``depth`` interior layers, and the core sweep mutates
  layer ``STENCIL_REACH`` onwards *while the pack is in flight* on any
  port that does not snapshot eagerly), where no member actually
  stencil-reads an exchanged field, or where splitting a fused group
  into a body phase and an epilogue phase would reorder cross-member
  dataflow.
* :func:`execute_overlap` runs one :class:`~repro.models.plan.OverlapStep`:
  post the exchange (``port.halo_begin``), sweep every chunk's core,
  complete the exchange (``port.halo_wait``), sweep the strips, then run
  the epilogues and combine reduction partials deterministically.

Deterministic simulated-async mode
----------------------------------
Nothing here consults a wall clock.  Communication cost is modelled as
``messages * NET_LATENCY_MS + bytes / NET_BANDWIDTH`` from the port's
declared wire traffic (:meth:`Port.halo_wire_traffic`), interior compute
as ``bytes / COMPUTE_BANDWIDTH`` from the kernel table's per-cell
footprints, and the hidden portion of an overlapped exchange is
``min(comm, interior)``.  The accounting (:class:`CommStats`, surfaced
as ``RunResult.comm``) is therefore a pure function of the plan and the
decomposition — bitwise results, traces and the exposed/hidden split
all replay identically run over run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.core import fields as F
from repro.models.plan import OPS, FusedGroup, HaloStep, KernelCall
from repro.models.reduction import deterministic_sum
from repro.models.stencil import row_matvec

#: Stencil reach of every overlappable operation (the 5-point stencil
#: reads one neighbour in each direction).  The boundary-strip width is
#: the reach, not the exchange depth: a depth-2 halo's second ghost
#: layer is never read by a reach-1 sweep, so the core may start one
#: cell in regardless of how deep the exchange is.
STENCIL_REACH = 1

#: Simulated network bandwidth for halo traffic (bytes per millisecond).
NET_BANDWIDTH_B_PER_MS = 20e6  # 20 GB/s
#: Simulated per-message latency (milliseconds).
NET_LATENCY_MS = 0.001
#: Simulated streaming bandwidth of one chunk's compute (bytes per ms).
COMPUTE_BANDWIDTH_B_PER_MS = 40e6  # 40 GB/s


def comm_cost_ms(nbytes: int, messages: int) -> float:
    """Modelled wire time for one exchange (latency + bandwidth terms)."""
    return messages * NET_LATENCY_MS + nbytes / NET_BANDWIDTH_B_PER_MS


def compute_cost_ms(nbytes: int) -> float:
    """Modelled sweep time for ``nbytes`` of kernel traffic."""
    return nbytes / COMPUTE_BANDWIDTH_B_PER_MS


# --------------------------------------------------------------------- #
# interior / boundary-strip partition
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class Region:
    """A rectangle of interior cells, in interior-relative coordinates."""

    r0: int
    r1: int
    c0: int
    c1: int

    @property
    def cells(self) -> int:
        return (self.r1 - self.r0) * (self.c1 - self.c0)


def interior_partition(
    ny: int, nx: int, depth: int
) -> tuple[Region | None, tuple[Region, ...]]:
    """Split an ``ny x nx`` interior into (core, boundary strips).

    The strips are the outermost ``depth`` layers (bottom and top rows
    span the full width; left and right columns cover the remaining
    middle rows); the core is everything further in.  Every interior
    cell lands in exactly one region for *any* ``ny``/``nx``/``depth``
    — when the mesh is too small for a core the strips absorb it and
    the core is ``None``.
    """
    rb = min(depth, ny)
    rt = max(rb, ny - depth)
    cl = min(depth, nx)
    cr = max(cl, nx - depth)
    strips: list[Region] = []
    if rb > 0:
        strips.append(Region(0, rb, 0, nx))
    if rt < ny:
        strips.append(Region(rt, ny, 0, nx))
    if rb < rt:
        if cl > 0:
            strips.append(Region(rb, rt, 0, cl))
        if cr < nx:
            strips.append(Region(rb, rt, cr, nx))
    core = Region(rb, rt, cl, cr) if (rb < rt and cl < cr) else None
    return core, tuple(strips)


class RegionSlices:
    """Array slices for one region — the region-typed CodegenContext.

    Offers the same ``I/Ip/Im/J/Jp/Jm`` attributes a
    :class:`~repro.models.codegen.CodegenContext` supplies for the full
    interior, shifted to the region, so generated bodies (and the
    hand-written overlap bodies below) evaluate the identical per-cell
    expressions over a sub-slab.
    """

    __slots__ = ("I", "Ip", "Im", "J", "Jp", "Jm")

    def __init__(self, h: int, region: Region) -> None:
        r0, r1, c0, c1 = region.r0, region.r1, region.c0, region.c1
        self.I = slice(h + r0, h + r1)
        self.Ip = slice(h + r0 + 1, h + r1 + 1)
        self.Im = slice(h + r0 - 1, h + r1 - 1)
        self.J = slice(h + c0, h + c1)
        self.Jp = slice(h + c0 + 1, h + c1 + 1)
        self.Jm = slice(h + c0 - 1, h + c1 - 1)

    @staticmethod
    def reduce(values: Any) -> float:  # pragma: no cover - legality bars it
        """Generated preamble binds ``S.reduce``; a region must never sum.

        A partial-region reduction would not be the canonical
        deterministic interior sum — the overlap legality pass keeps
        reductions in whole-interior epilogues, so reaching this is a
        compiler bug, not a numerics choice.
        """
        raise AssertionError("reduction evaluated over a boundary region")


# --------------------------------------------------------------------- #
# overlap templates
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class OverlapTemplate:
    """Region body + whole-interior epilogue for one operation.

    ``body(ctx, args, S)`` runs the elementwise sweep over the region
    ``S`` (a :class:`RegionSlices`); ``epilogue(ctx, args)`` runs any
    same-cell scalar updates and returns the member's reduction partial
    (or ``None``).  The read/write sets drive the legality pass: body
    sets describe what happens *while the exchange is in flight*,
    epilogue sets what happens after the wait.
    """

    body: Callable[..., None] | None
    epilogue: Callable[..., Any] | None
    body_reads: tuple[str, ...] = ()
    body_writes: tuple[str, ...] = ()
    epi_reads: tuple[str, ...] = ()
    epi_writes: tuple[str, ...] = ()


def _body_cg_calc_w(ctx: Any, args: tuple, S: RegionSlices) -> None:
    A = ctx.array
    A(F.W)[S.I, S.J] = row_matvec(
        A(F.P), A(F.KX), A(F.KY), S.I, S.Im, S.Ip, S.J, S.Jm, S.Jp
    )


def _epi_cg_calc_w(ctx: Any, args: tuple) -> float:
    A = ctx.array
    return deterministic_sum(
        (A(F.P)[ctx.I, ctx.J] * A(F.W)[ctx.I, ctx.J]).ravel()
    )


_RESIDUAL_FN: Callable | None = None


def _body_tea_leaf_residual(ctx: Any, args: tuple, S: RegionSlices) -> None:
    # Routed through the codegen backend's region-capable generated
    # function (the same cached object ``--codegen`` runs), exercising
    # the ``R`` parameter for real; the op has no epilogue, so the whole
    # sweep is region-safe.
    global _RESIDUAL_FN
    if _RESIDUAL_FN is None:
        from repro.models.codegen import _function_for

        _RESIDUAL_FN = _function_for((KernelCall("tea_leaf_residual"),))[0]
    _RESIDUAL_FN(ctx, (args,), S)


def _body_cheby_iterate(ctx: Any, args: tuple, S: RegionSlices) -> None:
    A = ctx.array
    A(F.R)[S.I, S.J] -= row_matvec(
        A(F.SD), A(F.KX), A(F.KY), S.I, S.Im, S.Ip, S.J, S.Jm, S.Jp
    )


def _epi_cheby_iterate(ctx: Any, args: tuple) -> None:
    A = ctx.array
    r, sd, u = A(F.R), A(F.SD), A(F.U)
    I, J = ctx.I, ctx.J
    sd[I, J] = args[0] * sd[I, J] + args[1] * r[I, J]
    u[I, J] += sd[I, J]
    return None


def _body_ppcg_precon_inner(ctx: Any, args: tuple, S: RegionSlices) -> None:
    A = ctx.array
    A(F.W)[S.I, S.J] -= row_matvec(
        A(F.SD), A(F.KX), A(F.KY), S.I, S.Im, S.Ip, S.J, S.Jm, S.Jp
    )


def _epi_ppcg_precon_inner(ctx: Any, args: tuple) -> None:
    A = ctx.array
    w, sd, z = A(F.W), A(F.SD), A(F.Z)
    I, J = ctx.I, ctx.J
    sd[I, J] = args[0] * sd[I, J] + args[1] * w[I, J]
    z[I, J] += sd[I, J]
    return None


def _epi_norm2_field(ctx: Any, args: tuple) -> float:
    v = ctx.array(args[0])[ctx.I, ctx.J]
    return deterministic_sum((v * v).ravel())


def _epi_dot_fields(ctx: Any, args: tuple) -> float:
    a = ctx.array(args[0])[ctx.I, ctx.J]
    b = ctx.array(args[1])[ctx.I, ctx.J]
    return deterministic_sum((a * b).ravel())


#: Operations the overlap pass may split.  The matvec-style sweeps keep
#: their stencil read in the body and push same-cell recurrences and
#: reductions into the epilogue; pure reductions are epilogue-only so
#: they can ride along inside a fused group (``jacobi_residual``'s
#: ``residual + norm2`` pair) without blocking the split.
OVERLAP_TEMPLATES: dict[str, OverlapTemplate] = {
    "cg_calc_w": OverlapTemplate(
        body=_body_cg_calc_w,
        epilogue=_epi_cg_calc_w,
        body_reads=(F.P, F.KX, F.KY),
        body_writes=(F.W,),
        epi_reads=(F.P, F.W),
    ),
    "tea_leaf_residual": OverlapTemplate(
        body=_body_tea_leaf_residual,
        epilogue=None,
        body_reads=(F.U0, F.U, F.KX, F.KY),
        body_writes=(F.R,),
    ),
    "cheby_iterate": OverlapTemplate(
        body=_body_cheby_iterate,
        epilogue=_epi_cheby_iterate,
        body_reads=(F.R, F.SD, F.KX, F.KY),
        body_writes=(F.R,),
        epi_reads=(F.R, F.SD, F.U),
        epi_writes=(F.SD, F.U),
    ),
    "ppcg_precon_inner": OverlapTemplate(
        body=_body_ppcg_precon_inner,
        epilogue=_epi_ppcg_precon_inner,
        body_reads=(F.W, F.SD, F.KX, F.KY),
        body_writes=(F.W,),
        epi_reads=(F.W, F.SD, F.Z),
        epi_writes=(F.SD, F.Z),
    ),
    "norm2_field": OverlapTemplate(body=None, epilogue=_epi_norm2_field),
    "dot_fields": OverlapTemplate(body=None, epilogue=_epi_dot_fields),
}


def _member_calls(body: Any) -> tuple[KernelCall, ...]:
    return body.calls if isinstance(body, FusedGroup) else (body,)


def _epi_reads(call: KernelCall, t: OverlapTemplate) -> set[str]:
    reads = set(t.epi_reads)
    if call.spec.reads_args:
        reads.update(a for a in call.args if isinstance(a, str))
    return reads


def overlap_reason(halo: HaloStep, body: Any) -> str | None:
    """Why ``halo`` may NOT overlap ``body`` — ``None`` when it is legal.

    Legality rules (each refusal returns a human-readable reason):

    1. every member must have an :data:`OVERLAP_TEMPLATES` entry;
    2. **WAR hazard**: no member's *body* may write an exchanged field.
       The exchange packs ``depth`` interior edge layers when it is
       posted; a body sweep runs concurrently and mutates everything
       from layer :data:`STENCIL_REACH` inward, so for ``depth >
       STENCIL_REACH`` the packed strip would change under an in-flight
       (or lazily-packing) send.  Epilogue writes are fine — they land
       after the wait, exactly where the non-overlapped plan wrote.
    3. at least one member must stencil-read an exchanged field — the
       split otherwise buys nothing;
    4. splitting a fused group must not reorder cross-member dataflow:
       a later member's body may not read an earlier member's epilogue
       writes (the epilogue now runs *after* that body), an earlier
       member's epilogue may not read a later member's body writes, and
       an earlier member's epilogue may not write what a later member's
       body writes.
    """
    if not isinstance(body, (KernelCall, FusedGroup)):
        return f"step {type(body).__name__} has no interior/boundary split"
    calls = _member_calls(body)
    for c in calls:
        if c.op not in OVERLAP_TEMPLATES:
            return f"no overlap template for '{c.op}'"
    names = set(halo.names)
    body_writes: set[str] = set()
    stencil_hit = False
    for c in calls:
        t = OVERLAP_TEMPLATES[c.op]
        body_writes.update(t.body_writes)
        if set(c.spec.stencil_reads) & names:
            stencil_hit = True
    war = body_writes & names
    if war:
        return (
            f"WAR hazard: interior body writes {sorted(war)} while their "
            f"depth-{halo.depth} exchange is in flight (the packed edge "
            f"layers would be mutated before the send completes)"
        )
    if not stencil_hit:
        return "no member stencil-reads an exchanged field"
    for i, ci in enumerate(calls):
        ti = OVERLAP_TEMPLATES[ci.op]
        epi_w = set(ti.epi_writes)
        epi_r = _epi_reads(ci, ti)
        for cj in calls[i + 1 :]:
            tj = OVERLAP_TEMPLATES[cj.op]
            if set(tj.body_reads) & epi_w:
                return (
                    f"phase hazard: '{cj.op}' body reads "
                    f"{sorted(set(tj.body_reads) & epi_w)} written by "
                    f"'{ci.op}' epilogue, which the split defers"
                )
            if epi_r & set(tj.body_writes):
                return (
                    f"phase hazard: '{ci.op}' epilogue reads "
                    f"{sorted(epi_r & set(tj.body_writes))} which "
                    f"'{cj.op}' body would overwrite first"
                )
            if epi_w & set(tj.body_writes):
                return (
                    f"phase hazard: '{ci.op}' epilogue and '{cj.op}' body "
                    f"both write {sorted(epi_w & set(tj.body_writes))} "
                    f"in swapped order"
                )
    return None


# --------------------------------------------------------------------- #
# exposed / hidden communication accounting
# --------------------------------------------------------------------- #
class CommStats:
    """Deterministic exposed-vs-hidden communication ledger for one run.

    Aggregated per *site* — one entry per (plan, step kind, exchanged
    fields, depth) — rather than per execution, so a 10k-iteration run
    stays bounded while still showing exactly which plan step pays which
    cost.  A plain :class:`~repro.models.plan.HaloStep` is fully
    exposed; an overlapped one hides ``min(comm, interior)``.
    """

    __slots__ = (
        "comm_ms",
        "exposed_ms",
        "hidden_ms",
        "halo_steps",
        "overlap_steps",
        "sites",
    )

    def __init__(self) -> None:
        self.comm_ms = 0.0
        self.exposed_ms = 0.0
        self.hidden_ms = 0.0
        self.halo_steps = 0
        self.overlap_steps = 0
        self.sites: dict[tuple, dict] = {}

    def _site(self, plan: str, kind: str, names: tuple, depth: int) -> dict:
        key = (plan, kind, names, depth)
        site = self.sites.get(key)
        if site is None:
            site = {
                "plan": plan,
                "kind": kind,
                "fields": list(names),
                "depth": depth,
                "count": 0,
                "comm_ms": 0.0,
                "exposed_ms": 0.0,
                "hidden_ms": 0.0,
            }
            self.sites[key] = site
        return site

    def record_halo(
        self, plan: str, names: tuple, depth: int, comm_ms: float
    ) -> None:
        self.halo_steps += 1
        self.comm_ms += comm_ms
        self.exposed_ms += comm_ms
        site = self._site(plan, "halo", names, depth)
        site["count"] += 1
        site["comm_ms"] += comm_ms
        site["exposed_ms"] += comm_ms

    def record_overlap(
        self,
        plan: str,
        names: tuple,
        depth: int,
        comm_ms: float,
        interior_ms: float,
    ) -> None:
        hidden = min(comm_ms, interior_ms)
        exposed = comm_ms - hidden
        self.overlap_steps += 1
        self.comm_ms += comm_ms
        self.exposed_ms += exposed
        self.hidden_ms += hidden
        site = self._site(plan, "overlap", names, depth)
        site["count"] += 1
        site["comm_ms"] += comm_ms
        site["exposed_ms"] += exposed
        site["hidden_ms"] += hidden

    def as_dict(self) -> dict:
        return {
            "comm_ms": self.comm_ms,
            "exposed_ms": self.exposed_ms,
            "hidden_ms": self.hidden_ms,
            "halo_steps": self.halo_steps,
            "overlap_steps": self.overlap_steps,
            "sites": [
                self.sites[key] for key in sorted(self.sites, key=repr)
            ],
        }


# --------------------------------------------------------------------- #
# execution
# --------------------------------------------------------------------- #
def execute_overlap(
    port: Any,
    step: Any,
    argv: tuple[tuple, ...],
    stats: CommStats | None = None,
    plan_name: str = "",
) -> list:
    """Run one OverlapStep: post exchange, sweep core, wait, sweep strips.

    Execution order per chunk: the exchange for ``step.halo`` is posted
    first (packing reads the pre-sweep edge values, exactly what the
    non-overlapped ``HaloStep`` would send), every chunk's core is swept
    while the messages are in flight, ``halo_wait`` completes delivery,
    the boundary strips are swept against the fresh ghosts, and finally
    the epilogues run over each chunk's whole interior with reduction
    partials combined through ``port.overlap_reduce`` (the same
    deterministic allreduce the interpreted dispatch uses).  Returns one
    result per member call, like ``dispatch_fused``.
    """
    halo = step.halo
    calls = step.calls
    templates = [OVERLAP_TEMPLATES[c.op] for c in calls]
    chunks = []
    for cp in port.overlap_chunks():
        ctx = cp._codegen_ctx()
        core, strips = interior_partition(
            cp.grid.ny, cp.grid.nx, STENCIL_REACH
        )
        chunks.append((cp, ctx, core, strips))

    nbytes, messages = port.halo_wire_traffic(halo.names, halo.depth)
    token = port.halo_begin(halo.names, halo.depth)

    interior_bytes = 0
    for cp, ctx, core, strips in chunks:
        if core is None:
            continue
        S = RegionSlices(ctx.h, core)
        for call, t, args in zip(calls, templates, argv):
            if t.body is None:
                continue
            spec = cp._launch(call.spec.kernel, cells=core.cells)
            t.body(ctx, args, S)
            interior_bytes += spec.bytes_for(core.cells)

    port.halo_wait(token)

    for cp, ctx, core, strips in chunks:
        for strip in strips:
            S = RegionSlices(ctx.h, strip)
            for call, t, args in zip(calls, templates, argv):
                if t.body is None:
                    continue
                cp._launch(call.spec.kernel, cells=strip.cells)
                t.body(ctx, args, S)

    results = []
    for call, t, args in zip(calls, templates, argv):
        value = None
        if t.epilogue is not None:
            partials = []
            for cp, ctx, core, strips in chunks:
                if t.body is None:
                    cp._launch(call.spec.kernel, cells=ctx.nx * ctx.ny)
                partials.append(t.epilogue(ctx, args))
            if call.spec.reduction:
                value = port.overlap_reduce(partials)
        results.append(value)
        written = call.spec.written(args)
        if written:
            for cp, _ctx, _core, _strips in chunks:
                cp._mark_dirty(written)

    if stats is not None:
        stats.record_overlap(
            plan_name,
            halo.names,
            halo.depth,
            comm_cost_ms(nbytes, messages),
            compute_cost_ms(interior_bytes),
        )
    return results
