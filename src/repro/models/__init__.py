"""Programming-model emulations and the port registry.

Each subpackage emulates one of the parallel programming models evaluated by
the paper — its API shape, data-residency rules and execution structure —
while executing the actual TeaLeaf numerics on NumPy and emitting a
machine-readable event trace (kernel launches, bytes moved, host<->device
transfers, reduction passes).  The trace is what the device performance
simulator in :mod:`repro.machine` converts into simulated seconds.

Importing this package registers all built-in models.
"""

from repro.models.base import (
    Capabilities,
    DeviceKind,
    Port,
    ProgrammingModel,
    Support,
    available_models,
    get_model,
    register_model,
)
from repro.models.tracing import Event, EventKind, Trace

# Import for registration side effects (each module calls register_model).
from repro.models import openmp3 as _openmp3  # noqa: F401
from repro.models import openmp4 as _openmp4  # noqa: F401
from repro.models import openacc_port as _openacc  # noqa: F401
from repro.models import kokkos_port as _kokkos  # noqa: F401
from repro.models import raja_port as _raja  # noqa: F401
from repro.models import opencl_port as _opencl  # noqa: F401
from repro.models import cuda_port as _cuda  # noqa: F401

__all__ = [
    "Capabilities",
    "DeviceKind",
    "Port",
    "ProgrammingModel",
    "Support",
    "available_models",
    "get_model",
    "register_model",
    "Event",
    "EventKind",
    "Trace",
]
