"""The CUDA TeaLeaf port (§2.6, §3.5 of the paper).

"In order to port TeaLeaf to CUDA we essentially converted all of the
loops into CUDA kernels, and wrote data copying and reduction logic."
(§3.5).  This module does exactly that: every kernel is a ``__global__``-
style function over a 1-D grid of 1-D blocks, computing its global index
from block/thread coordinates and guarding iteration overspill; every
reduction-based kernel embeds the shared-memory block tree and writes one
partial per block, which the host copies back and finishes.

CUDA offers no portability beyond NVIDIA GPUs (Table 1), and — since any
model targeting NVIDIA GPUs lowers to PTX — it provides the performance
*lower bound* the other GPU models are measured against in Figure 9.
"""

from __future__ import annotations

import numpy as np

from repro.core import fields as F
from repro.core.grid import Grid2D
from repro.models.base import (
    Capabilities,
    DeviceKind,
    Port,
    ProgrammingModel,
    Support,
    register_model,
)
from repro.models.cuda.launch import Dim3, ThreadContext, blocks_for, launch
from repro.models.cuda.reduction import block_reduce_sum
from repro.models.cuda.runtime import CudaRuntime, DeviceAllocation, MemcpyKind
from repro.models.reduction import combine_partials
from repro.models.stencil import decode_interior, flat_diag, flat_matvec
from repro.models.tracing import Trace
from repro.util.errors import ModelError

#: Threads per block (power of two, required by the reduction tree).
BLOCK_SIZE = 128


# --------------------------------------------------------------------- #
# __global__ kernels
# --------------------------------------------------------------------- #
def _interior_idx(ctx: ThreadContext, n: int, pitch: int, h: int, nx: int):
    """Global index + overspill guard + interior flat position."""
    return decode_interior(ctx.global_idx, n, pitch, h, nx)


def _matvec(i, v, kx, ky, pitch):
    return flat_matvec(i, v, kx, ky, 1, pitch)


def cuda_set_field(ctx, n, pitch, h, nx, energy0, energy1):
    _, i, _, _ = _interior_idx(ctx, n, pitch, h, nx)
    energy1[i] = energy0[i]


def cuda_tea_leaf_init(ctx, n, pitch, h, nx, rx, ry, recip, density, energy, u, u0, kx, ky):
    _, i, j, k = _interior_idx(ctx, n, pitch, h, nx)
    u[i] = energy[i] * density[i]
    u0[i] = u[i]
    fx = i[j > h]
    wc = 1.0 / density[fx] if recip else density[fx]
    wx = 1.0 / density[fx - 1] if recip else density[fx - 1]
    kx[fx] = rx * (wx + wc) / (2.0 * wx * wc)
    fy = i[k > h]
    wc = 1.0 / density[fy] if recip else density[fy]
    wy = 1.0 / density[fy - pitch] if recip else density[fy - pitch]
    ky[fy] = ry * (wy + wc) / (2.0 * wy * wc)


def cuda_residual(ctx, n, pitch, h, nx, r, u0, u, kx, ky):
    _, i, _, _ = _interior_idx(ctx, n, pitch, h, nx)
    r[i] = u0[i] - _matvec(i, u, kx, ky, pitch)


def cuda_cg_init(ctx, n, pitch, h, nx, u, u0, w, r, p, kx, ky, partials):
    valid, i, _, _ = _interior_idx(ctx, n, pitch, h, nx)
    w[i] = _matvec(i, u, kx, ky, pitch)
    r[i] = u0[i] - w[i]
    p[i] = r[i]
    value = np.zeros(ctx.global_idx.size)
    value[valid] = r[i] * r[i]
    partials[: ctx.gridDim_x] = block_reduce_sum(value, ctx.blockDim_x)


def cuda_cg_calc_w(ctx, n, pitch, h, nx, p, w, kx, ky, partials):
    valid, i, _, _ = _interior_idx(ctx, n, pitch, h, nx)
    w[i] = _matvec(i, p, kx, ky, pitch)
    value = np.zeros(ctx.global_idx.size)
    value[valid] = p[i] * w[i]
    partials[: ctx.gridDim_x] = block_reduce_sum(value, ctx.blockDim_x)


def cuda_cg_calc_ur(ctx, n, pitch, h, nx, alpha, u, r, p, w, partials):
    valid, i, _, _ = _interior_idx(ctx, n, pitch, h, nx)
    u[i] += alpha * p[i]
    r[i] -= alpha * w[i]
    value = np.zeros(ctx.global_idx.size)
    value[valid] = r[i] * r[i]
    partials[: ctx.gridDim_x] = block_reduce_sum(value, ctx.blockDim_x)


def cuda_axpy(ctx, n, pitch, h, nx, scale, dst, src):
    _, i, _, _ = _interior_idx(ctx, n, pitch, h, nx)
    dst[i] = src[i] + scale * dst[i]


def cuda_cheby_init(ctx, n, pitch, h, nx, theta, u, u0, r, sd, kx, ky):
    _, i, _, _ = _interior_idx(ctx, n, pitch, h, nx)
    r[i] = u0[i] - _matvec(i, u, kx, ky, pitch)
    sd[i] = r[i] / theta


def cuda_cheby_calc_r(ctx, n, pitch, h, nx, resid, sd, kx, ky):
    _, i, _, _ = _interior_idx(ctx, n, pitch, h, nx)
    resid[i] -= _matvec(i, sd, kx, ky, pitch)


def cuda_cheby_calc_sd_u(ctx, n, pitch, h, nx, alpha, beta, sd, resid, accum):
    _, i, _, _ = _interior_idx(ctx, n, pitch, h, nx)
    sd[i] = alpha * sd[i] + beta * resid[i]
    accum[i] += sd[i]


def cuda_add(ctx, n, pitch, h, nx, dst, src):
    _, i, _, _ = _interior_idx(ctx, n, pitch, h, nx)
    dst[i] += src[i]


def cuda_ppcg_precon_init(ctx, n, pitch, h, nx, theta, w, sd, z, r):
    _, i, _, _ = _interior_idx(ctx, n, pitch, h, nx)
    w[i] = r[i]
    sd[i] = w[i] / theta
    z[i] = sd[i]


def cuda_cg_precon(ctx, n, pitch, h, nx, z, r, kx, ky):
    _, i, _, _ = _interior_idx(ctx, n, pitch, h, nx)
    z[i] = r[i] / flat_diag(i, kx, ky, 1, pitch)


def cuda_jacobi(ctx, n, pitch, h, nx, u, un, u0, kx, ky, partials):
    valid, i, _, _ = _interior_idx(ctx, n, pitch, h, nx)
    diag = flat_diag(i, kx, ky, 1, pitch)
    u[i] = (
        u0[i]
        + kx[i + 1] * un[i + 1]
        + kx[i] * un[i - 1]
        + ky[i + pitch] * un[i + pitch]
        + ky[i] * un[i - pitch]
    ) / diag
    value = np.zeros(ctx.global_idx.size)
    value[valid] = np.abs(u[i] - un[i])
    partials[: ctx.gridDim_x] = block_reduce_sum(value, ctx.blockDim_x)


def cuda_dot(ctx, n, pitch, h, nx, a, b, partials):
    valid, i, _, _ = _interior_idx(ctx, n, pitch, h, nx)
    value = np.zeros(ctx.global_idx.size)
    value[valid] = a[i] * b[i]
    partials[: ctx.gridDim_x] = block_reduce_sum(value, ctx.blockDim_x)


def cuda_copy(ctx, total, dst, src):
    idx = ctx.global_idx
    i = idx[idx < total]
    dst[i] = src[i]


def cuda_finalise(ctx, n, pitch, h, nx, energy, u, density):
    _, i, _, _ = _interior_idx(ctx, n, pitch, h, nx)
    energy[i] = u[i] / density[i]


def cuda_summary_term(ctx, n, pitch, h, nx, mode, cell_volume, density, energy, u, partials):
    valid, i, _, _ = _interior_idx(ctx, n, pitch, h, nx)
    value = np.zeros(ctx.global_idx.size)
    if mode == 0:
        value[valid] = cell_volume
    elif mode == 1:
        value[valid] = cell_volume * density[i]
    elif mode == 2:
        value[valid] = cell_volume * density[i] * energy[i]
    else:
        value[valid] = cell_volume * u[i]
    partials[: ctx.gridDim_x] = block_reduce_sum(value, ctx.blockDim_x)


# --------------------------------------------------------------------- #
# the port
# --------------------------------------------------------------------- #
class CUDAPort(Port):
    """TeaLeaf as CUDA kernels over a 1-D grid of 1-D blocks.

    Fusable: adjacent elementwise bodies become one launch over the same
    1-D grid, the standard CUDA megakernel move.
    """

    model_name = "cuda"
    supports_fusion = True

    def __init__(
        self,
        grid: Grid2D,
        trace: Trace | None = None,
        block_size: int = BLOCK_SIZE,
    ) -> None:
        super().__init__(grid, trace)
        if block_size & (block_size - 1):
            raise ModelError(f"block size must be a power of two, got {block_size}")
        self.rt = CudaRuntime(self.trace)
        self._pitch = grid.nx + 2 * grid.halo
        self._rows = grid.ny + 2 * grid.halo
        self._n = grid.cells
        self.block = Dim3(block_size)
        self.grid_dim = Dim3(blocks_for(self._n, block_size))
        words = self._pitch * self._rows
        self.dev: dict[str, DeviceAllocation] = {
            name: self.rt.malloc(words, name) for name in F.FIELD_ORDER
        }
        self._partials = self.rt.malloc(self.grid_dim.x, "reduce_partials")
        self._partials_host = np.zeros(self.grid_dim.x)
        self._rx = 0.0
        self._ry = 0.0

    # ------------------------------------------------------------------ #
    def set_state(self, density: np.ndarray, energy0: np.ndarray) -> None:
        if density.shape != self.grid.shape:
            raise ModelError(
                f"state shape {density.shape} != grid shape {self.grid.shape}"
            )
        self.rt.memcpy(self.dev[F.DENSITY], density, MemcpyKind.HOST_TO_DEVICE)
        self.rt.memcpy(self.dev[F.ENERGY0], energy0, MemcpyKind.HOST_TO_DEVICE)
        self._launch("generate_chunk")
        self._mark_dirty(F.FIELD_ORDER)

    def read_field(self, name: str) -> np.ndarray:
        mirror = self._mirror_clean(name)
        if mirror is not None:
            return mirror.copy()
        host = np.zeros(self.grid.shape)
        self.rt.memcpy(host, self.dev[name], MemcpyKind.DEVICE_TO_HOST)
        self._mirror_store(name, host)
        return host

    def write_field(self, name: str, values: np.ndarray) -> None:
        self.rt.memcpy(self.dev[name], values, MemcpyKind.HOST_TO_DEVICE)
        self._mark_dirty((name,))

    def _device_array(self, name: str) -> np.ndarray:
        return self.dev[name].data.reshape(self._rows, self._pitch)

    # Kernels fetch ``dev[name].data`` per launch, so swapping the
    # allocation for one adopting an arena row is safe; the retired
    # allocation is freed so any stale capture fails loudly.
    supports_field_binding = True

    def bind_field(self, name: str, flat: np.ndarray) -> None:
        old = self.dev[name]
        self.dev[name] = self.rt.adopt(flat, name)
        self.rt.free(old)
        self.invalidate_residency((name,))

    # ------------------------------------------------------------------ #
    def _geo(self) -> tuple[int, int, int, int]:
        return self._n, self._pitch, self.h, self.grid.nx

    def _run(self, kernel, *args) -> None:
        launch(kernel, self.grid_dim, self.block, *self._geo(), *args)

    def _run_reduce(self, kernel, *args) -> float:
        launch(
            kernel, self.grid_dim, self.block, *self._geo(), *args,
            self._partials.data,
        )
        self.trace.reduction_pass(f"block_reduce:{kernel.__name__}", self.grid_dim.x * 8)
        if self._residency_enabled:
            # Residency mode pins the partials buffer in host-mapped
            # (zero-copy) memory, so the final combine reads the block
            # partials in place — no per-reduction D2H transfer.  This
            # was the residency bug: every solver iteration's reductions
            # re-counted a device->host copy whether or not tracking was
            # on, burying the field-transfer savings under ~250
            # partials readbacks per step.  Values are identical either
            # way; only the redundant copy (and its trace event) goes.
            host = self._partials.data
        else:
            self.rt.memcpy(
                self._partials_host, self._partials, MemcpyKind.DEVICE_TO_HOST
            )
            host = self._partials_host
        # Canonical host-side combine of the block partials (the in-block
        # tree already equals the canonical chunk stage).
        return combine_partials(host)

    def _d(self, name: str) -> np.ndarray:
        return self.dev[name].data

    # ------------------------------------------------------------------ #
    def _k_set_field(self) -> None:
        self._run(cuda_set_field, self._d(F.ENERGY0), self._d(F.ENERGY1))

    def _k_tea_leaf_init(self, dt: float, coefficient: str) -> None:
        g = self.grid
        self._rx = dt / (g.dx * g.dx)
        self._ry = dt / (g.dy * g.dy)
        self._run(
            cuda_tea_leaf_init,
            self._rx,
            self._ry,
            1 if coefficient == "recip_conductivity" else 0,
            self._d(F.DENSITY),
            self._d(F.ENERGY1),
            self._d(F.U),
            self._d(F.U0),
            self._d(F.KX),
            self._d(F.KY),
        )

    def _k_tea_leaf_residual(self) -> None:
        self._run(
            cuda_residual, self._d(F.R), self._d(F.U0), self._d(F.U),
            self._d(F.KX), self._d(F.KY),
        )

    def _k_cg_init(self) -> float:
        return self._run_reduce(
            cuda_cg_init,
            self._d(F.U), self._d(F.U0), self._d(F.W), self._d(F.R), self._d(F.P),
            self._d(F.KX), self._d(F.KY),
        )

    def _k_cg_calc_w(self) -> float:
        return self._run_reduce(
            cuda_cg_calc_w, self._d(F.P), self._d(F.W), self._d(F.KX), self._d(F.KY)
        )

    def _k_cg_calc_ur(self, alpha: float) -> float:
        return self._run_reduce(
            cuda_cg_calc_ur, alpha,
            self._d(F.U), self._d(F.R), self._d(F.P), self._d(F.W),
        )

    def _k_cg_calc_p(self, beta: float) -> None:
        self._run(cuda_axpy, beta, self._d(F.P), self._d(F.R))

    def _k_ppcg_calc_p(self, beta: float) -> None:
        self._run(cuda_axpy, beta, self._d(F.P), self._d(F.Z))

    def _k_cheby_init(self, theta: float) -> None:
        self._run(
            cuda_cheby_init, theta,
            self._d(F.U), self._d(F.U0), self._d(F.R), self._d(F.SD),
            self._d(F.KX), self._d(F.KY),
        )
        self._run(cuda_add, self._d(F.U), self._d(F.SD))

    def _k_cheby_iterate(self, alpha: float, beta: float) -> None:
        self._run(cuda_cheby_calc_r, self._d(F.R), self._d(F.SD), self._d(F.KX), self._d(F.KY))
        self._run(cuda_cheby_calc_sd_u, alpha, beta, self._d(F.SD), self._d(F.R), self._d(F.U))

    def _k_ppcg_precon_init(self, theta: float) -> None:
        self._run(
            cuda_ppcg_precon_init, theta,
            self._d(F.W), self._d(F.SD), self._d(F.Z), self._d(F.R),
        )

    def _k_ppcg_precon_inner(self, alpha: float, beta: float) -> None:
        self._run(cuda_cheby_calc_r, self._d(F.W), self._d(F.SD), self._d(F.KX), self._d(F.KY))
        self._run(cuda_cheby_calc_sd_u, alpha, beta, self._d(F.SD), self._d(F.W), self._d(F.Z))

    def _k_cg_precon_jacobi(self) -> None:
        self._run(cuda_cg_precon, self._d(F.Z), self._d(F.R), self._d(F.KX), self._d(F.KY))

    def _k_jacobi_iterate(self) -> float:
        return self._run_reduce(
            cuda_jacobi,
            self._d(F.U), self._d(F.R), self._d(F.U0), self._d(F.KX), self._d(F.KY),
        )

    def _k_norm2_field(self, name: str) -> float:
        return self._run_reduce(cuda_dot, self._d(name), self._d(name))

    def _k_dot_fields(self, a: str, b: str) -> float:
        return self._run_reduce(cuda_dot, self._d(a), self._d(b))

    def _k_copy_field(self, src: str, dst: str) -> None:
        self.rt.memcpy(self.dev[dst], self.dev[src], MemcpyKind.DEVICE_TO_DEVICE)

    def _k_tea_leaf_finalise(self) -> None:
        self._run(cuda_finalise, self._d(F.ENERGY1), self._d(F.U), self._d(F.DENSITY))

    def _k_field_summary(self) -> tuple[float, float, float, float]:
        terms = tuple(
            self._run_reduce(
                cuda_summary_term, mode, self.grid.cell_volume,
                self._d(F.DENSITY), self._d(F.ENERGY1), self._d(F.U),
            )
            for mode in range(4)
        )
        return terms  # type: ignore[return-value]


class CUDAModel(ProgrammingModel):
    capabilities = Capabilities(
        name="cuda",
        display_name="CUDA",
        directive_based=False,
        language="C/C++ (kernels)",
        support={
            DeviceKind.CPU: Support.NO,
            DeviceKind.GPU: Support.YES,
            DeviceKind.KNC: Support.NO,
        },
        cross_platform=False,
        summary="NVIDIA's mature platform; the device-tuned GPU lower bound.",
    )

    def make_port(self, grid: Grid2D, trace: Trace | None = None) -> CUDAPort:
        return CUDAPort(grid, trace)


register_model(CUDAModel())
