"""RAJA reduction objects.

``ReduceSum`` mirrors RAJA's reducer types: constructed before the
``forall``, accumulated from inside the lambda with ``+=``, read after
with ``get()``.  Accumulating a NumPy array adds the sum of the batch —
the emulation's analogue of each iteration contributing one value.
"""

from __future__ import annotations

import numpy as np

from repro.util.errors import ModelError


class ReduceSum:
    """A sum reduction variable usable from inside a forall body."""

    def __init__(self, policy: type, initial: float = 0.0) -> None:
        # The policy parameter mirrors RAJA's ReduceSum<reduce_policy, T>;
        # the emulation accepts it for API fidelity but all policies reduce
        # deterministically.
        self.policy = policy
        self._value = float(initial)
        self._closed = False

    def __iadd__(self, contribution) -> "ReduceSum":
        if self._closed:
            raise ModelError("ReduceSum accumulated after get()")
        if isinstance(contribution, np.ndarray):
            self._value += float(np.sum(contribution))
        else:
            self._value += float(contribution)
        return self

    def get(self) -> float:
        """Final reduced value (closes the reducer, like RAJA's host read)."""
        self._closed = True
        return self._value
