"""RAJA reduction objects.

``ReduceSum`` mirrors RAJA's reducer types: constructed before the
``forall``, accumulated from inside the lambda with ``+=``, read after
with ``get()``.  Accumulating a NumPy array contributes the whole batch —
the emulation's analogue of each iteration contributing one value.

Contributions are *buffered* in accumulation order and finalised once by
the shared deterministic pairwise tree
(:func:`repro.models.reduction.deterministic_sum`), mirroring how a real
RAJA reducer defers the combine until the host reads the value.  The old
emulation summed each contribution into a scalar left to right, which
both produced a port-specific floating-point order (the cross-port CG
drift) and made a reused reducer silently accumulate onto an
already-read value.  ``get()`` is idempotent — the finalised value is
cached — and accumulating after ``get()`` raises.
"""

from __future__ import annotations

import numpy as np

from repro.models.reduction import deterministic_sum
from repro.util.errors import ModelError


class ReduceSum:
    """A sum reduction variable usable from inside a forall body."""

    def __init__(self, policy: type, initial: float = 0.0) -> None:
        # The policy parameter mirrors RAJA's ReduceSum<reduce_policy, T>;
        # the emulation accepts it for API fidelity but all policies reduce
        # deterministically.
        self.policy = policy
        self._initial = float(initial)
        self._contributions: list[np.ndarray] = []
        self._result: float | None = None

    def __iadd__(self, contribution) -> "ReduceSum":
        if self._result is not None:
            raise ModelError("ReduceSum accumulated after get()")
        self._contributions.append(
            np.atleast_1d(np.asarray(contribution, dtype=np.float64)).ravel()
        )
        return self

    def get(self) -> float:
        """Final reduced value (closes the reducer, like RAJA's host read)."""
        if self._result is None:
            if self._contributions:
                total = deterministic_sum(np.concatenate(self._contributions))
            else:
                total = 0.0
            self._result = self._initial + total
        return self._result
