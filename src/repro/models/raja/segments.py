"""RAJA Segments and IndexSets.

A Segment is one unit of work with one access pattern; an IndexSet
aggregates Segments of possibly different types so they can be dispatched
together ("Partition iteration space into work units", §2.3).
"""

from __future__ import annotations

import numpy as np

from repro.util.errors import ModelError


class RangeSegment:
    """A contiguous index range ``[begin, end)`` — stride-1, vectorisable."""

    vectorisable = True

    def __init__(self, begin: int, end: int) -> None:
        if end < begin:
            raise ModelError(f"RangeSegment end {end} < begin {begin}")
        self.begin = begin
        self.end = end

    def indices(self) -> np.ndarray:
        return np.arange(self.begin, self.end, dtype=np.int64)

    def __len__(self) -> int:
        return self.end - self.begin

    def __repr__(self) -> str:
        return f"RangeSegment({self.begin}, {self.end})"


class ListSegment:
    """An explicit indirection array of indices.

    This is how the TeaLeaf RAJA port excluded halo cells: the interior
    indices are precomputed into lists, so the loop body needs no
    conditionals — but indirect addressing "precludes vectorisation"
    (§4.1), which the performance calibration charges for.
    """

    vectorisable = False

    def __init__(self, indices: np.ndarray) -> None:
        arr = np.asarray(indices, dtype=np.int64)
        if arr.ndim != 1:
            raise ModelError(f"ListSegment indices must be 1-D, got shape {arr.shape}")
        if arr.size and np.any(arr < 0):
            raise ModelError("ListSegment indices must be non-negative")
        self._indices = arr

    def indices(self) -> np.ndarray:
        return self._indices

    def __len__(self) -> int:
        return self._indices.size

    def __repr__(self) -> str:
        return f"ListSegment(len={len(self)})"


Segment = RangeSegment | ListSegment


class IndexSet:
    """An ordered collection of Segments dispatched as one iteration space."""

    def __init__(self, segments: list[Segment] | None = None) -> None:
        self._segments: list[Segment] = []
        for seg in segments or []:
            self.push_back(seg)

    def push_back(self, segment: Segment) -> None:
        if not isinstance(segment, (RangeSegment, ListSegment)):
            raise ModelError(f"not a Segment: {segment!r}")
        self._segments.append(segment)

    @property
    def segments(self) -> list[Segment]:
        return list(self._segments)

    def __len__(self) -> int:
        """Total number of indices across all segments."""
        return sum(len(s) for s in self._segments)

    def num_segments(self) -> int:
        return len(self._segments)

    def all_indices(self) -> np.ndarray:
        """Concatenated indices in dispatch order (tests/validation)."""
        if not self._segments:
            return np.empty(0, dtype=np.int64)
        return np.concatenate([s.indices() for s in self._segments])

    @property
    def vectorisable(self) -> bool:
        """True when every segment is stride-1."""
        return all(s.vectorisable for s in self._segments)
