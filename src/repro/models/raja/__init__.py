"""RAJA emulation (§2.3 of the paper).

Emulates the pre-release RAJA abstractions the TeaLeaf port used:

* **Segments** — units of the partitioned iteration space:
  :class:`RangeSegment` (contiguous, vectorisable) and
  :class:`ListSegment` (an indirection array of arbitrary indices — how
  the port excluded halos "without any explicit conditions or index
  calculations in the loop body", at the cost of precluding vectorisation,
  §3.4/§4.1);
* **IndexSets** — ordered aggregations of segments dispatched as one
  logical iteration space;
* **forall** — the traversal template decoupling loop body from loop
  order, taking a lambda for the body;
* **Reducers** — ``ReduceSum`` objects accumulated from inside the body,
  plus the custom multi-reducer dispatch the paper's authors had to write
  themselves ("it was necessary to create our own implementations of the
  dispatch functions ... for multiple reduction variables").
"""

from repro.models.raja.segments import IndexSet, ListSegment, RangeSegment
from repro.models.raja.forall import forall, omp_parallel_for_exec, seq_exec, simd_exec
from repro.models.raja.reducers import ReduceSum

__all__ = [
    "RangeSegment",
    "ListSegment",
    "IndexSet",
    "forall",
    "seq_exec",
    "omp_parallel_for_exec",
    "simd_exec",
    "ReduceSum",
]
