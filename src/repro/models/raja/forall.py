"""RAJA ``forall``: the traversal template.

``forall(policy, target, body)`` decouples the loop body (a lambda taking
the iteration index) from the traversal (segment order + execution
policy), RAJA's foundational abstraction ("Separate loop body from
traversal", §2.3).  Bodies receive index batches as NumPy arrays, one
batch per segment, in segment order.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.models.raja.segments import IndexSet, ListSegment, RangeSegment
from repro.util.errors import ModelError


class seq_exec:
    """Sequential execution policy."""

    name = "seq_exec"


class omp_parallel_for_exec:
    """CPU-parallel execution policy (the port's default for TeaLeaf)."""

    name = "omp_parallel_for_exec"


class simd_exec:
    """Forced-vectorisation policy — the RAJA-SIMD proof of concept (§4.1).

    Only valid over stride-1 RangeSegments: the whole point of the paper's
    experiment was that indirection lists preclude vectorisation, so
    requesting simd over a ListSegment raises.
    """

    name = "simd_exec"


class cuda_exec:
    """CUDA-backed execution policy (extension).

    §2.3: "Internally, the built-in dispatch functions wrap up
    platform-specific implementations ... a GPU-targetting implementation
    can use CUDA", and the paper's RAJA predated that backend ("the RAJA
    developers are in the process of writing an NVIDIA GPU targetting
    implementation").  This policy realises it by dispatching each
    segment's lambda as a kernel through the CUDA launch emulation —
    one ``<<<grid, block>>>`` per segment, with the standard overspill
    guard.
    """

    name = "cuda_exec"
    block_size = 128


Policy = type


def forall(
    policy: Policy,
    target: IndexSet | RangeSegment | ListSegment,
    body: Callable[[np.ndarray], None],
) -> None:
    """Apply ``body`` to every index of ``target`` under ``policy``."""
    if policy not in (seq_exec, omp_parallel_for_exec, simd_exec, cuda_exec):
        raise ModelError(f"unknown RAJA execution policy {policy!r}")

    if isinstance(target, (RangeSegment, ListSegment)):
        segments = [target]
    elif isinstance(target, IndexSet):
        segments = target.segments
    else:
        raise ModelError(f"forall target must be a Segment or IndexSet, got {target!r}")

    if policy is simd_exec:
        for seg in segments:
            if not seg.vectorisable:
                raise ModelError(
                    "simd_exec requires stride-1 RangeSegments; "
                    f"got {seg!r} (indirection precludes vectorisation)"
                )

    if policy is cuda_exec:
        from repro.models.cuda.launch import Dim3, blocks_for, launch

        for seg in segments:
            indices = seg.indices()
            if not indices.size:
                continue

            def raja_cuda_kernel(ctx, n, idx):
                tid = ctx.global_idx
                body(idx[tid[tid < n]])  # overspill-guarded lambda dispatch

            launch(
                raja_cuda_kernel,
                Dim3(blocks_for(indices.size, cuda_exec.block_size)),
                Dim3(cuda_exec.block_size),
                indices.size,
                indices,
            )
        return

    for seg in segments:
        idx = seg.indices()
        if idx.size:
            body(idx)
