"""Live-range field arenas: shared backing storage for solver work fields.

Every port historically allocated one persistent array per canonical
field.  But the liveness pass over the plan IR
(:func:`repro.models.plan.compute_liveness`) proves that the WORK-role
fields are fully re-derived every timestep, and that several of them are
never live at the same time — so their bytes can share *slots* of a
per-batch arena instead of each owning an allocation.  A
:class:`FieldArena` holds those slots (plus private blocks for every
other field) for N batch *lanes* at once, laid out so one generated
kernel can sweep all lanes' copies of a field through a single strided
view (see :mod:`repro.core.batch`).

The arena is also the debugging surface: because the liveness pass knows
exactly when a work field dies, poison mode NaN-fills its slot at the
point of death, turning any read of a dead field into a loud non-finite
failure instead of a silently stale value.
"""

from __future__ import annotations

from typing import Any, Iterable

import numpy as np

from repro.core import fields as F
from repro.models.plan import FieldLiveness, Plan, compute_liveness


def solve_timeline(deck: Any, halo: int) -> list[Plan]:
    """The canonical cyclic plan timeline of one timestep of ``deck``.

    Prologue, the deck's solver fragments — with every contiguous run of
    looping fragments unrolled twice so loop-carried fields interfere
    across the back edge — then the epilogue.  This is the input
    :func:`repro.models.plan.compute_liveness` analyses.
    """
    from repro.core.driver import solve_step_plans
    from repro.core.solvers import solver_timeline

    prologue, epilogue = solve_step_plans(halo)
    timeline: list[Plan] = [prologue]
    rows = solver_timeline(deck)
    i = 0
    while i < len(rows):
        if rows[i][1]:
            j = i
            while j < len(rows) and rows[j][1]:
                j += 1
            run = [plan for plan, _ in rows[i:j]]
            timeline.extend(run)
            timeline.extend(run)
            i = j
        else:
            timeline.append(rows[i][0])
            i += 1
    timeline.append(epilogue)
    return timeline


def deck_liveness(deck: Any, halo: int | None = None) -> FieldLiveness:
    """Per-field live ranges and arena slots for ``deck``'s solve cycle."""
    if halo is None:
        halo = deck.grid().halo
    return compute_liveness(solve_timeline(deck, halo))


class FieldArena:
    """Lane-major backing storage for one batch of field sets.

    Each field's storage across all lanes is one ``(lanes, words)``
    float64 C-order block; lane ``l``'s copy is the contiguous row
    ``block[l]``.  Arena-eligible fields that the liveness coloring
    placed in the same slot share a block — their per-lane rows alias
    the same bytes, which is exactly the point: the coloring proved
    their values never coexist.

    Ports adopt the rows through :meth:`Port.bind_field`; the batch
    conductor sweeps lane ranges through :meth:`batched` views.
    """

    def __init__(self, words: int, lanes: int, liveness: FieldLiveness) -> None:
        self.words = int(words)
        self.lanes = int(lanes)
        self.liveness = liveness
        self._slot_blocks = [
            np.zeros((self.lanes, self.words)) for _ in range(liveness.slot_count)
        ]
        self._blocks: dict[str, np.ndarray] = {}
        for name in F.FIELD_ORDER:
            slot = liveness.slots.get(name)
            if slot is None:
                self._blocks[name] = np.zeros((self.lanes, self.words))
            else:
                self._blocks[name] = self._slot_blocks[slot]
        #: Other fields aliasing each field's bytes (empty for private
        #: blocks) — residency invalidation must cover them on writes.
        self.partners: dict[str, tuple[str, ...]] = {}
        members: dict[int, list[str]] = {}
        for name, slot in liveness.slots.items():
            members.setdefault(slot, []).append(name)
        for slot, names in members.items():
            for name in names:
                others = tuple(m for m in names if m != name)
                if others:
                    self.partners[name] = others

    # ------------------------------------------------------------------ #
    # views
    # ------------------------------------------------------------------ #
    def lane_flat(self, name: str, lane: int) -> np.ndarray:
        """Lane ``lane``'s flat (words,) backing row for ``name``."""
        return self._blocks[name][lane]

    def batched(
        self, name: str, lane0: int, count: int, shape: tuple[int, int], order: str
    ) -> np.ndarray:
        """(H, W, count) view over lanes ``lane0 .. lane0+count-1``.

        The lane axis is trailing, so elementwise expressions written for
        a single (H, W) field broadcast across lanes unchanged and every
        lane's element arithmetic is bitwise what its solo run computes.
        ``order`` is the port's :meth:`field_memory_order`: ``"F"`` lanes
        place element (i, j) at flat ``j*H + i`` (Kokkos LayoutLeft).
        """
        h, w = shape
        block = self._blocks[name][lane0 : lane0 + count]
        if order == "F":
            return block.reshape(count, w, h).transpose(2, 1, 0)
        return block.reshape(count, h, w).transpose(1, 2, 0)

    # ------------------------------------------------------------------ #
    # port binding
    # ------------------------------------------------------------------ #
    def bind_port(self, port: Any, lane: int) -> None:
        """Rebind every field of ``port`` onto this arena's ``lane``.

        Also installs the slot-partner map so the port's residency
        dirty-tracking knows a write to one field clobbers the mirrors
        of everything sharing its slot, and drops any existing mirrors —
        the bytes behind every field just changed owners.
        """
        for name in F.FIELD_ORDER:
            port.bind_field(name, self.lane_flat(name, lane))
        port._slot_partners = dict(self.partners)
        port.invalidate_residency(F.FIELD_ORDER)

    # ------------------------------------------------------------------ #
    # poison (debug) mode
    # ------------------------------------------------------------------ #
    def poison(
        self, names: Iterable[str], lane: int, port: Any | None = None
    ) -> None:
        """NaN-fill the slots holding ``names`` on ``lane``.

        Used at a field's death point: any later read before the next
        definition surfaces as a non-finite guard failure.  Device
        mirrors of every field sharing the poisoned bytes are dropped.
        """
        affected: list[str] = []
        for name in names:
            if name in self.liveness.slots:
                self.lane_flat(name, lane).fill(np.nan)
                affected.append(name)
                affected.extend(self.partners.get(name, ()))
        if port is not None and affected:
            port.invalidate_residency(affected)

    def poison_work_fields(self, lane: int, port: Any | None = None) -> None:
        """Step-start poison: kill every arena field on ``lane`` at once.

        Sound because arena eligibility *is* the proof that each cycle
        defines the field before reading it.
        """
        self.poison(self.liveness.arena_fields, lane, port)

    # ------------------------------------------------------------------ #
    # accounting
    # ------------------------------------------------------------------ #
    def stats(self) -> dict[str, Any]:
        """Arena footprint vs. what persistent per-field storage costs."""
        field_bytes = self.words * 8
        n_work = len(self.liveness.arena_fields)
        return {
            "lanes": self.lanes,
            "words_per_field": self.words,
            "slot_count": self.liveness.slot_count,
            "arena_fields": list(self.liveness.arena_fields),
            "slots": dict(self.liveness.slots),
            "arena_bytes": self.liveness.slot_count * field_bytes * self.lanes,
            "work_field_bytes": n_work * field_bytes * self.lanes,
            "bytes_ratio": (
                self.liveness.slot_count / n_work if n_work else 1.0
            ),
        }
