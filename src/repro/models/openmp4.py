"""The OpenMP 4.0 offload TeaLeaf port (§2.1, §3.1 of the paper).

Exactly as the paper describes, this port is the OpenMP C codebase with a
``target`` region added to each performance-critical function and a
``target data`` region "at the highest possible scope, above the main
timestep loop['s solve], that kept all data resident on the device until
convergence was achieved for the particular step".

Every kernel launch therefore enters one synchronous ``target`` region —
the per-invocation overhead that the paper measured as the model's main
cost ("a performance overhead dependent upon the number of target
invocations"), and the reason its CG solver (4 kernels + a halo refresh
per iteration) suffers more than Chebyshev/PPCG (Figure 10: +45 % CG on
KNC vs <10 % for the others).  The device performance simulator charges
each REGION trace event accordingly.
"""

from __future__ import annotations

import numpy as np

from repro.core import fields as F
from repro.core.grid import Grid2D
from repro.models.base import (
    Capabilities,
    DeviceKind,
    ProgrammingModel,
    Support,
    register_model,
)
from repro.models.openmp.directives import DeviceDataEnvironment, TargetDataRegion
from repro.models.openmp3 import OpenMP3Port
from repro.models.tracing import Trace
from repro.util.errors import ModelError

#: Work vectors that live on the device for the duration of a solve but
#: never need host copies (``map(alloc:...)``).
_ALLOC_FIELDS = (F.U0, F.P, F.R, F.W, F.SD, F.Z, F.KX, F.KY)


class _DeviceFieldView:
    """Name -> device array resolution inside the target data region.

    Unmapped lookups raise :class:`ModelError`, the emulation's analogue of
    a missing ``map`` clause.
    """

    def __init__(self, env: DeviceDataEnvironment) -> None:
        self._env = env

    def __getitem__(self, name: str) -> np.ndarray:
        return self._env.device(name)


class OpenMP4Port(OpenMP3Port):
    """OpenMP C loop bodies under 4.0 target offload directives."""

    #: Region label; the 4.5 subclass switches to the nowait form.
    _region_label = "target"

    #: Each launch is a synchronous target region — a hard fence the plan
    #: compiler must respect, so no fusion across this port.
    supports_fusion = False
    has_data_region = True
    #: The device data environment *copies* host arrays on map, so field
    #: storage cannot alias externally-owned arena memory (inherited
    #: OpenMP3 binding would silently bypass the mapped copies).
    supports_field_binding = False

    def __init__(self, grid: Grid2D, trace: Trace | None = None) -> None:
        super().__init__(grid, trace, dialect="f90")
        self.model_name = "openmp4"
        self.env = DeviceDataEnvironment(self.trace)
        self._data_region: TargetDataRegion | None = None

    # ------------------------------------------------------------------ #
    # residency
    # ------------------------------------------------------------------ #
    @property
    def fields(self):
        if self._data_region is not None:
            return _DeviceFieldView(self.env)
        return self._host_fields

    def begin_solve(self) -> None:
        if self._data_region is not None:
            if self._residency_enabled:
                # Persistent region: still open from the previous step.
                return
            raise ModelError("solve target data region is already open")
        hf = self._host_fields
        # density is read-only on the device; energy1 and u are both
        # produced on the device and consumed by the host summary.
        map_to = {F.DENSITY: hf[F.DENSITY]}
        if self._residency_enabled:
            # With the region held open across steps, set_field runs inside
            # it on every step after the first, so its read-only input must
            # be mapped too.
            map_to[F.ENERGY0] = hf[F.ENERGY0]
        region = TargetDataRegion(
            self.env,
            map_to=map_to,
            map_tofrom={F.ENERGY1: hf[F.ENERGY1], F.U: hf[F.U]},
            map_alloc={name: hf[name] for name in _ALLOC_FIELDS},
        )
        region.__enter__()
        self._data_region = region

    def end_solve(self) -> None:
        if self._data_region is None:
            raise ModelError("no open solve target data region")
        if self._residency_enabled:
            # Residency tracking hoists the data region above the timestep
            # loop: leave it open, host reads go through target update.
            return
        self._data_region.__exit__(None, None, None)
        self._data_region = None

    # ------------------------------------------------------------------ #
    # every kernel launch inside the data region is one target region
    # ------------------------------------------------------------------ #
    def _launch(self, kernel_name: str, cells: int | None = None, spec=None):
        spec = super()._launch(kernel_name, cells, spec)
        if self._data_region is not None:
            self.trace.region(f"{self._region_label}:{kernel_name}")
        return spec

    # ------------------------------------------------------------------ #
    # host access must go through target update directives
    # ------------------------------------------------------------------ #
    def read_field(self, name: str) -> np.ndarray:
        if self._data_region is not None and self.env.is_mapped(name):
            self.env.update_from(name)
        return self._host_fields[name].copy()

    def write_field(self, name: str, values: np.ndarray) -> None:
        self._host_fields[name][...] = values
        if self._data_region is not None and self.env.is_mapped(name):
            self.env.update_to(name)

    def _device_array(self, name: str) -> np.ndarray:
        if self._data_region is not None and self.env.is_mapped(name):
            return self.env.device(name)
        return self._host_fields[name]


class OpenMP45Port(OpenMP4Port):
    """OpenMP 4.5: ``target nowait`` streams of back-to-back regions.

    An extension beyond the paper's evaluation (4.5 had just been released
    at the time of writing): every solve kernel is queued with ``nowait``
    so the per-invocation overhead drops to the pipelined level — the
    paper's §3.1 hypothesis, quantified by the ablation benchmarks.
    Reductions and host reads still imply synchronisation points, which the
    real runtime would realise through task dependences; the emulation's
    in-order execution makes those implicit.
    """

    _region_label = "target_nowait"

    def __init__(self, grid: Grid2D, trace: Trace | None = None) -> None:
        super().__init__(grid, trace)
        self.model_name = "openmp45"


class OpenMP4Model(ProgrammingModel):
    capabilities = Capabilities(
        name="openmp4",
        display_name="OpenMP 4.0",
        directive_based=True,
        language="C/Fortran",
        support={
            DeviceKind.CPU: Support.YES,
            DeviceKind.GPU: Support.EXPERIMENTAL,
            DeviceKind.KNC: Support.OFFLOAD,
        },
        cross_platform=True,
        summary="Open-standard directive offload; tested on KNC offload in the paper.",
    )

    def make_port(self, grid: Grid2D, trace: Trace | None = None) -> OpenMP4Port:
        return OpenMP4Port(grid, trace)


class OpenMP45Model(ProgrammingModel):
    capabilities = Capabilities(
        name="openmp45",
        display_name="OpenMP 4.5 (target nowait)",
        directive_based=True,
        language="C/Fortran",
        support={
            DeviceKind.CPU: Support.YES,
            DeviceKind.GPU: Support.EXPERIMENTAL,
            DeviceKind.KNC: Support.OFFLOAD,
        },
        cross_platform=True,
        summary="Extension: the 4.5 nowait/async offload stream the paper "
        "anticipated (§3.1); not part of the evaluated set.",
    )

    def make_port(self, grid: Grid2D, trace: Trace | None = None) -> OpenMP45Port:
        return OpenMP45Port(grid, trace)


register_model(OpenMP4Model())
register_model(OpenMP45Model())
