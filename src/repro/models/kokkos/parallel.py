"""Kokkos parallel dispatch: RangePolicy, TeamPolicy, reducers.

``parallel_for``/``parallel_reduce`` accept either a functor object (a
class with ``__call__``, the verbose style CUDA 7.0 forced on the paper's
port) or a bare lambda/function (the succinct style §3.3 notes became
possible later) — both receive the iteration index.

Dispatch modes
--------------
* ``RangePolicy`` — the flattened index space is delivered to the functor
  as one NumPy index array (vector/SIMT-batch execution).  Functor bodies
  are written in array form; for reductions they return a per-index
  contribution array which the reducer combines.
* ``RangePolicy(..., scalar=True)`` — the functor is invoked once per
  index with a Python int.  Slow; used by tests to prove the batch and
  scalar forms compute identical results.
* ``TeamPolicy`` — hierarchical parallelism: the functor runs once per
  league member with a :class:`TeamMember` handle, and per-team reduction
  partials are combined at the end ("additional code is needed to
  critically add the results from each team", §3.3/Figure 7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.models.reduction import deterministic_multi_sum, deterministic_sum
from repro.util.errors import ModelError


@dataclass(frozen=True)
class RangePolicy:
    """Flat 1-D iteration range ``[begin, end)``."""

    begin: int
    end: int
    #: Per-index scalar dispatch (validation mode).
    scalar: bool = False

    def __post_init__(self) -> None:
        if self.end < self.begin:
            raise ModelError(f"RangePolicy end {self.end} < begin {self.begin}")


@dataclass(frozen=True)
class TeamPolicy:
    """Hierarchical league of thread teams."""

    league_size: int
    team_size: int = 1

    def __post_init__(self) -> None:
        if self.league_size < 0 or self.team_size < 1:
            raise ModelError(
                f"invalid TeamPolicy({self.league_size}, {self.team_size})"
            )


@dataclass(frozen=True)
class TeamMember:
    """Handle given to a TeamPolicy functor: one team of the league."""

    league_rank: int
    league_size: int
    team_size: int

    def team_thread_range(self, n: int) -> np.ndarray:
        """``TeamThreadRange``: this team's slice of an inner range.

        Teams in the emulation process the whole inner range as one vector
        batch (team threads are the SIMT lanes).
        """
        return np.arange(n)


class Sum:
    """Default Kokkos reducer: zero-initialised sum (§2.4).

    ``select`` optionally names the flat indices whose contributions are
    live, in canonical (row-major interior) order: the flat Kokkos port
    masks halo cells to zero inside the functor body, and the deterministic
    finalize must fold only the live cells — in the same order as every
    other port — for the result to be bitwise portable across models.
    """

    width = 1

    def __init__(self, select: np.ndarray | None = None) -> None:
        self.select = select

    def init(self) -> float:
        return 0.0

    def join(self, a: float, b: float) -> float:
        return a + b

    def combine_contributions(self, contrib) -> float:
        """Reduce one batch's per-index contributions deterministically."""
        values = np.asarray(contrib, dtype=np.float64).ravel()
        if self.select is not None:
            values = values[self.select]
        return deterministic_sum(values)


class MultiSum:
    """Custom multi-variable reducer with user init/join (§3.3).

    The paper notes the one TeaLeaf kernel with a multi-variable reduction
    (the field summary) needed custom initialisation and join functions —
    this is that reducer.
    """

    def __init__(self, width: int, select: np.ndarray | None = None) -> None:
        if width < 1:
            raise ModelError(f"MultiSum width must be positive, got {width}")
        self.width = width
        self.select = select

    def init(self) -> tuple[float, ...]:
        return (0.0,) * self.width

    def join(self, a: Sequence[float], b: Sequence[float]) -> tuple[float, ...]:
        if len(a) != self.width or len(b) != self.width:
            raise ModelError("MultiSum.join: arity mismatch")
        return tuple(x + y for x, y in zip(a, b))

    def combine_contributions(self, contrib: Sequence) -> tuple[float, ...]:
        if len(contrib) != self.width:
            raise ModelError(
                f"reduction functor returned {len(contrib)} values, expected {self.width}"
            )
        arrays = [np.asarray(c, dtype=np.float64).ravel() for c in contrib]
        if self.select is not None:
            arrays = [a[self.select] for a in arrays]
        return deterministic_multi_sum(arrays)


def parallel_for(policy: RangePolicy | TeamPolicy, functor: Callable) -> None:
    """Execute a functor over a policy (no reduction)."""
    if isinstance(policy, RangePolicy):
        if policy.scalar:
            for i in range(policy.begin, policy.end):
                functor(i)
        else:
            functor(np.arange(policy.begin, policy.end))
        return
    if isinstance(policy, TeamPolicy):
        for rank in range(policy.league_size):
            functor(TeamMember(rank, policy.league_size, policy.team_size))
        return
    raise ModelError(f"unsupported policy {policy!r}")


def parallel_reduce(
    policy: RangePolicy | TeamPolicy,
    functor: Callable,
    reducer: Sum | MultiSum | None = None,
):
    """Execute a reduction functor; returns the reduced value(s).

    RangePolicy functors return per-index contribution array(s); TeamPolicy
    functors return one partial per team, joined across the league.
    """
    red = reducer if reducer is not None else Sum()
    if isinstance(policy, RangePolicy):
        if policy.scalar:
            # Buffer the per-index values and finalise through the same
            # reducer as the batch path, so scalar validation dispatch is
            # bitwise identical to batch dispatch.
            values = [functor(i) for i in range(policy.begin, policy.end)]
            if red.width > 1:
                return red.combine_contributions(
                    tuple(np.asarray([v[w] for v in values]) for w in range(red.width))
                )
            return red.combine_contributions(np.asarray(values))
        contrib = functor(np.arange(policy.begin, policy.end))
        return red.combine_contributions(contrib)
    if isinstance(policy, TeamPolicy):
        partials = [
            functor(TeamMember(rank, policy.league_size, policy.team_size))
            for rank in range(policy.league_size)
        ]
        # "critically add the results from each team" (§3.3).  Teams that
        # contribute whole per-lane arrays are folded through the shared
        # deterministic finalize (league order is row order, the canonical
        # contribution order); scalar per-team partials keep the classic
        # left-to-right critical join.
        if partials and all(isinstance(p, np.ndarray) for p in partials):
            if red.width > 1:
                raise ModelError("array team partials need a width-1 reducer")
            return red.combine_contributions(np.concatenate(partials))
        acc = red.init()
        for partial in partials:
            acc = red.join(acc, partial) if red.width > 1 else acc + partial
        return acc
    raise ModelError(f"unsupported policy {policy!r}")
