"""Kokkos emulation (§2.4 of the paper).

Emulates the Kokkos abstractions the TeaLeaf port uses:

* execution/memory **spaces** with explicit ``deep_copy`` between them;
* **Views** — labelled multi-dimensional arrays with compile-time-style
  layout selection (LayoutRight/LayoutLeft) and shared-ownership copy
  semantics;
* **functors** — callable objects whose ``operator()`` receives the
  (flattened) iteration index, dispatched by ``parallel_for`` /
  ``parallel_reduce``;
* **hierarchical parallelism** — ``TeamPolicy`` league/team dispatch with
  per-team reductions combined "critically", the Figure 7 pattern Sandia
  contributed to fix the KNC halo-conditional problem.

Execution detail: the emulation dispatches RangePolicy functors with the
whole index batch as a NumPy array (the Python analogue of SIMT/vector
execution), so functor bodies are written in array form; a tiny-problem
scalar dispatch mode exists for validating that both forms agree.
"""

from repro.models.kokkos.core import (
    Layout,
    MemorySpace,
    View,
    create_mirror_view,
    deep_copy,
)
from repro.models.kokkos.parallel import (
    MultiSum,
    RangePolicy,
    Sum,
    TeamMember,
    TeamPolicy,
    parallel_for,
    parallel_reduce,
)

__all__ = [
    "Layout",
    "MemorySpace",
    "View",
    "create_mirror_view",
    "deep_copy",
    "RangePolicy",
    "TeamPolicy",
    "TeamMember",
    "Sum",
    "MultiSum",
    "parallel_for",
    "parallel_reduce",
]
