"""Kokkos Views, spaces, and deep copies.

Kokkos separates *where code runs* (execution space) from *where data
lives* (memory space) and makes data layout a polymorphic property of the
View type, so the same source compiles to row-major on CPUs and
column-major (coalesced) on GPUs [Edwards, Trott & Sunderland 2014].  The
emulation keeps all of that observable: Views carry a layout that controls
the underlying NumPy order, host and device spaces are distinct
allocations, and crossing spaces requires an explicit ``deep_copy`` which
is traced as a transfer.
"""

from __future__ import annotations

from enum import Enum

import numpy as np

from repro.models.tracing import Trace, TransferDirection
from repro.util.errors import ModelError


class MemorySpace(Enum):
    """Where a View's allocation lives."""

    HOST = "HostSpace"
    DEVICE = "DeviceSpace"


class Layout(Enum):
    """Index-to-memory mapping of a View."""

    #: C order: last index strides fastest (Kokkos default on CPUs).
    RIGHT = "LayoutRight"
    #: Fortran order: first index strides fastest (Kokkos default on CUDA).
    LEFT = "LayoutLeft"


class View:
    """A labelled, layout-polymorphic array with shared-copy semantics.

    Copy-constructing a View (``View(other_view)``) aliases the same
    allocation, matching Kokkos' ``std::shared_ptr``-like semantics (§2.4);
    ``deep_copy`` is the only way to copy contents.
    """

    def __init__(
        self,
        label: str | View,
        shape: tuple[int, ...] | None = None,
        layout: Layout = Layout.RIGHT,
        space: MemorySpace = MemorySpace.DEVICE,
    ) -> None:
        if isinstance(label, View):
            src = label
            self.label = src.label
            self.layout = src.layout
            self.space = src.space
            self.data = src.data  # shallow: shared allocation
            return
        if shape is None:
            raise ModelError(f"View '{label}' needs a shape")
        self.label = label
        self.layout = layout
        self.space = space
        order = "C" if layout is Layout.RIGHT else "F"
        self.data = np.zeros(shape, dtype=np.float64, order=order)

    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def nbytes(self) -> int:
        return self.data.nbytes

    def extent(self, dim: int) -> int:
        """Kokkos ``extent(i)``."""
        return self.data.shape[dim]

    def span(self) -> int:
        """Total number of elements."""
        return self.data.size

    @property
    def flat(self) -> np.ndarray:
        """1-D alias in layout order (what a flattened RangePolicy indexes)."""
        order = "C" if self.layout is Layout.RIGHT else "F"
        return self.data.reshape(-1, order=order)

    def __getitem__(self, key):
        return self.data[key]

    def __setitem__(self, key, value):
        self.data[key] = value

    def aliases(self, other: "View") -> bool:
        """True when two Views share one allocation."""
        return self.data is other.data

    def __repr__(self) -> str:
        return (
            f"View({self.label!r}, shape={self.shape}, "
            f"{self.layout.value}, {self.space.value})"
        )


def create_mirror_view(view: View) -> View:
    """A host-space View with the same shape and layout.

    Like Kokkos, if the source is already in host space the mirror *is*
    the source (no allocation).
    """
    if view.space is MemorySpace.HOST:
        return View(view)
    mirror = View(f"{view.label}_mirror", view.shape, view.layout, MemorySpace.HOST)
    return mirror


def deep_copy(dst: View, src: View, trace: Trace | None = None) -> None:
    """Copy contents between Views, tracing cross-space transfers."""
    if dst.shape != src.shape:
        raise ModelError(
            f"deep_copy shape mismatch: {dst.label}{dst.shape} <- {src.label}{src.shape}"
        )
    dst.data[...] = src.data
    if trace is not None and dst.space is not src.space:
        direction = (
            TransferDirection.H2D
            if dst.space is MemorySpace.DEVICE
            else TransferDirection.D2H
        )
        trace.transfer(f"deep_copy:{dst.label}<-{src.label}", src.nbytes, direction)
