"""The OpenCL TeaLeaf port (§2.5, §3.6 of the paper).

The most boilerplate-heavy port, exactly as the paper found: platform and
device discovery, context and command-queue creation, buffer allocation,
program build, kernel-object creation, and positional ``set_arg`` calls
before *every* launch.  Kernels are written per-work-item over a flattened
1-D ND-range with work-group overspill guards, and every reduction is the
manually-written work-group-tree + host-combine pattern OpenCL 1.x forced
on the authors.

The kernels in this module are the "program source"; they take the global
work-item id batch plus their bound arguments, mirroring the .cl files of
the reference port.
"""

from __future__ import annotations

import numpy as np

from repro.core import fields as F
from repro.core.grid import Grid2D
from repro.models.base import (
    Capabilities,
    DeviceKind,
    Port,
    ProgrammingModel,
    Support,
    register_model,
)
from repro.models.opencl.platform import DeviceType, find_device
from repro.models.opencl.program import Program
from repro.models.opencl.runtime import Buffer, CommandQueue, Context, MemFlags
from repro.models.reduction import combine_partials
from repro.models.stencil import decode_interior, flat_diag, flat_matvec
from repro.models.tracing import Trace, TransferDirection
from repro.util.errors import ModelError


# --------------------------------------------------------------------- #
# kernel sources (the .cl file)
# --------------------------------------------------------------------- #
def _decode(gid, n, pitch, h, nx):
    """Overspill guard + interior flat-index computation."""
    return decode_interior(gid, n, pitch, h, nx)


def _matvec(i, v, kx, ky, pitch):
    return flat_matvec(i, v, kx, ky, 1, pitch)


def k_set_field(gid, n, pitch, h, nx, energy0, energy1):
    _, i, _, _ = _decode(gid, n, pitch, h, nx)
    energy1[i] = energy0[i]


def k_tea_leaf_init(gid, n, pitch, h, nx, rx, ry, recip, density, energy, u, u0, kx, ky):
    _, i, j, k = _decode(gid, n, pitch, h, nx)
    u[i] = energy[i] * density[i]
    u0[i] = u[i]
    fx = i[j > h]  # x-faces, west wall excluded (zero-flux)
    wc = 1.0 / density[fx] if recip else density[fx]
    wx = 1.0 / density[fx - 1] if recip else density[fx - 1]
    kx[fx] = rx * (wx + wc) / (2.0 * wx * wc)
    fy = i[k > h]
    wc = 1.0 / density[fy] if recip else density[fy]
    wy = 1.0 / density[fy - pitch] if recip else density[fy - pitch]
    ky[fy] = ry * (wy + wc) / (2.0 * wy * wc)


def k_residual(gid, n, pitch, h, nx, r, u0, u, kx, ky):
    _, i, _, _ = _decode(gid, n, pitch, h, nx)
    r[i] = u0[i] - _matvec(i, u, kx, ky, pitch)


def k_cg_init(gid, n, pitch, h, nx, u, u0, w, r, p, kx, ky):
    valid, i, _, _ = _decode(gid, n, pitch, h, nx)
    w[i] = _matvec(i, u, kx, ky, pitch)
    r[i] = u0[i] - w[i]
    p[i] = r[i]
    contrib = np.zeros(gid.size)
    contrib[valid] = r[i] * r[i]
    return contrib


def k_cg_calc_w(gid, n, pitch, h, nx, p, w, kx, ky):
    valid, i, _, _ = _decode(gid, n, pitch, h, nx)
    w[i] = _matvec(i, p, kx, ky, pitch)
    contrib = np.zeros(gid.size)
    contrib[valid] = p[i] * w[i]
    return contrib


def k_cg_calc_ur(gid, n, pitch, h, nx, alpha, u, r, p, w):
    valid, i, _, _ = _decode(gid, n, pitch, h, nx)
    u[i] += alpha * p[i]
    r[i] -= alpha * w[i]
    contrib = np.zeros(gid.size)
    contrib[valid] = r[i] * r[i]
    return contrib


def k_axpy(gid, n, pitch, h, nx, scale, dst, src):
    """dst = src + scale * dst (cg_calc_p and the PPCG variant)."""
    _, i, _, _ = _decode(gid, n, pitch, h, nx)
    dst[i] = src[i] + scale * dst[i]


def k_cheby_init(gid, n, pitch, h, nx, theta, u, u0, r, sd, kx, ky):
    _, i, _, _ = _decode(gid, n, pitch, h, nx)
    r[i] = u0[i] - _matvec(i, u, kx, ky, pitch)
    sd[i] = r[i] / theta


def k_cheby_calc_r(gid, n, pitch, h, nx, resid, sd, kx, ky):
    _, i, _, _ = _decode(gid, n, pitch, h, nx)
    resid[i] -= _matvec(i, sd, kx, ky, pitch)


def k_cheby_calc_sd_u(gid, n, pitch, h, nx, alpha, beta, sd, resid, accum):
    _, i, _, _ = _decode(gid, n, pitch, h, nx)
    sd[i] = alpha * sd[i] + beta * resid[i]
    accum[i] += sd[i]


def k_add(gid, n, pitch, h, nx, dst, src):
    _, i, _, _ = _decode(gid, n, pitch, h, nx)
    dst[i] += src[i]


def k_ppcg_precon_init(gid, n, pitch, h, nx, theta, w, sd, z, r):
    _, i, _, _ = _decode(gid, n, pitch, h, nx)
    w[i] = r[i]
    sd[i] = w[i] / theta
    z[i] = sd[i]


def k_cg_precon(gid, n, pitch, h, nx, z, r, kx, ky):
    _, i, _, _ = _decode(gid, n, pitch, h, nx)
    z[i] = r[i] / flat_diag(i, kx, ky, 1, pitch)


def k_jacobi(gid, n, pitch, h, nx, u, un, u0, kx, ky):
    valid, i, _, _ = _decode(gid, n, pitch, h, nx)
    diag = flat_diag(i, kx, ky, 1, pitch)
    u[i] = (
        u0[i]
        + kx[i + 1] * un[i + 1]
        + kx[i] * un[i - 1]
        + ky[i + pitch] * un[i + pitch]
        + ky[i] * un[i - pitch]
    ) / diag
    contrib = np.zeros(gid.size)
    contrib[valid] = np.abs(u[i] - un[i])
    return contrib


def k_dot(gid, n, pitch, h, nx, a, b):
    valid, i, _, _ = _decode(gid, n, pitch, h, nx)
    contrib = np.zeros(gid.size)
    contrib[valid] = a[i] * b[i]
    return contrib


def k_copy(gid, total, dst, src):
    """Whole-allocation copy (halos included)."""
    i = gid[gid < total]
    dst[i] = src[i]


def k_finalise(gid, n, pitch, h, nx, energy, u, density):
    _, i, _, _ = _decode(gid, n, pitch, h, nx)
    energy[i] = u[i] / density[i]


def k_summary_term(gid, n, pitch, h, nx, mode, cell_volume, density, energy, u):
    """One term of the 4-way field summary (mode 0..3)."""
    valid, i, _, _ = _decode(gid, n, pitch, h, nx)
    contrib = np.zeros(gid.size)
    if mode == 0:
        contrib[valid] = cell_volume
    elif mode == 1:
        contrib[valid] = cell_volume * density[i]
    elif mode == 2:
        contrib[valid] = cell_volume * density[i] * energy[i]
    else:
        contrib[valid] = cell_volume * u[i]
    return contrib


KERNEL_SOURCES = {
    "set_field": k_set_field,
    "tea_leaf_init": k_tea_leaf_init,
    "residual": k_residual,
    "cg_init": k_cg_init,
    "cg_calc_w": k_cg_calc_w,
    "cg_calc_ur": k_cg_calc_ur,
    "axpy": k_axpy,
    "cheby_init": k_cheby_init,
    "cheby_calc_r": k_cheby_calc_r,
    "cheby_calc_sd_u": k_cheby_calc_sd_u,
    "add": k_add,
    "ppcg_precon_init": k_ppcg_precon_init,
    "cg_precon": k_cg_precon,
    "jacobi": k_jacobi,
    "dot": k_dot,
    "copy": k_copy,
    "finalise": k_finalise,
    "summary_term": k_summary_term,
}

#: Work-group size used for every launch (the port tunes one size per
#: device in reality; 128 is the reference GPU choice).
LOCAL_SIZE = 128


class OpenCLPort(Port):
    """TeaLeaf through the full OpenCL host API.

    Fusable: adjacent elementwise bodies enqueue as one ND-range over the
    same flattened index space.
    """

    model_name = "opencl"
    supports_fusion = True

    def __init__(
        self,
        grid: Grid2D,
        trace: Trace | None = None,
        device_type: DeviceType = DeviceType.GPU,
        local_size: int = LOCAL_SIZE,
        scalar_dispatch: bool = False,
    ) -> None:
        super().__init__(grid, trace)
        self.scalar_dispatch = scalar_dispatch
        self._pitch = grid.nx + 2 * grid.halo
        self._rows = grid.ny + 2 * grid.halo
        self._n = grid.cells
        self.local_size = local_size
        # 1. platform & device discovery
        self.platform, self.device = find_device(device_type)
        # 2. context + in-order command queue
        self.context = Context([self.device], self.trace)
        self.queue = CommandQueue(self.context, self.device)
        # 3. program build + kernel objects
        self.program = Program(self.context, KERNEL_SOURCES).build("-cl-mad-enable")
        self.kernels = {
            name: self.program.create_kernel(name) for name in KERNEL_SOURCES
        }
        # 4. buffer allocation (flat, padded)
        words = self._pitch * self._rows
        self.buffers: dict[str, Buffer] = {
            name: Buffer(self.context, MemFlags.READ_WRITE, size=words * 8)
            for name in F.FIELD_ORDER
        }
        self._global = self._round_up(self._n)
        self._partials = Buffer(
            self.context, MemFlags.READ_WRITE, size=(self._global // local_size) * 8
        )
        self._partials_host = np.zeros(self._global // local_size)
        self._rx = 0.0
        self._ry = 0.0

    def _round_up(self, n: int) -> int:
        ls = self.local_size
        return ((n + ls - 1) // ls) * ls

    # ------------------------------------------------------------------ #
    # data interface
    # ------------------------------------------------------------------ #
    def set_state(self, density: np.ndarray, energy0: np.ndarray) -> None:
        if density.shape != self.grid.shape:
            raise ModelError(
                f"state shape {density.shape} != grid shape {self.grid.shape}"
            )
        self.queue.enqueue_write_buffer(self.buffers[F.DENSITY], density)
        self.queue.enqueue_write_buffer(self.buffers[F.ENERGY0], energy0)
        self._launch("generate_chunk")
        self._mark_dirty(F.FIELD_ORDER)

    def read_field(self, name: str) -> np.ndarray:
        mirror = self._mirror_clean(name)
        if mirror is not None:
            return mirror.copy()
        host = np.zeros(self.grid.shape)
        self.queue.enqueue_read_buffer(self.buffers[name], host)
        self._mirror_store(name, host)
        return host

    def write_field(self, name: str, values: np.ndarray) -> None:
        self.queue.enqueue_write_buffer(self.buffers[name], values)
        self._mark_dirty((name,))

    def _device_array(self, name: str) -> np.ndarray:
        return self.buffers[name].device_view.reshape(self._rows, self._pitch)

    # Kernels take their buffers per set_arg round, so swapping the dict
    # entry for an adopting Buffer is safe; the old one is released so
    # any stale use fails loudly.
    supports_field_binding = True

    def bind_field(self, name: str, flat: np.ndarray) -> None:
        old = self.buffers[name]
        self.buffers[name] = Buffer.adopt(self.context, MemFlags.READ_WRITE, flat)
        old.release()
        self.invalidate_residency((name,))

    # ------------------------------------------------------------------ #
    # launch helpers (the set_arg boilerplate)
    # ------------------------------------------------------------------ #
    def _geometry_args(self, kernel) -> int:
        kernel.set_arg(0, self._n)
        kernel.set_arg(1, self._pitch)
        kernel.set_arg(2, self.h)
        kernel.set_arg(3, self.grid.nx)
        return 4

    def _run(self, name: str, *args) -> None:
        kernel = self.kernels[name]
        base = self._geometry_args(kernel)
        for offset, value in enumerate(args):
            kernel.set_arg(base + offset, value)
        self.queue.enqueue_nd_range_kernel(
            kernel, self._global, self.local_size, scalar=self.scalar_dispatch
        )

    def _run_reduce(self, name: str, *args) -> float:
        kernel = self.kernels[name]
        base = self._geometry_args(kernel)
        for offset, value in enumerate(args):
            kernel.set_arg(base + offset, value)
        groups = self.queue.enqueue_reduction_kernel(
            kernel,
            self._global,
            self.local_size,
            self._partials,
            scalar=self.scalar_dispatch,
        )
        # Host-side final combine of the work-group partials.
        host = self._partials_host[:groups]
        host[...] = self._partials.device_view[:groups]
        if not self._residency_enabled:
            # Residency mode maps the partials buffer host-visible
            # (CL_MEM_ALLOC_HOST_PTR), so the combine reads the group
            # partials in place instead of enqueueing a per-reduction
            # D2H transfer — previously every iteration's reductions
            # counted one, swamping the field-residency savings.
            self.trace.transfer("read_partials", groups * 8, TransferDirection.D2H)
        # Canonical host-side combine: the work-group tree already equals
        # the canonical chunk stage for the default local size.
        return combine_partials(host)

    # ------------------------------------------------------------------ #
    # the kernel set
    # ------------------------------------------------------------------ #
    def _k_set_field(self) -> None:
        self._run("set_field", self.buffers[F.ENERGY0], self.buffers[F.ENERGY1])

    def _k_tea_leaf_init(self, dt: float, coefficient: str) -> None:
        g = self.grid
        self._rx = dt / (g.dx * g.dx)
        self._ry = dt / (g.dy * g.dy)
        b = self.buffers
        self._run(
            "tea_leaf_init",
            self._rx,
            self._ry,
            1 if coefficient == "recip_conductivity" else 0,
            b[F.DENSITY],
            b[F.ENERGY1],
            b[F.U],
            b[F.U0],
            b[F.KX],
            b[F.KY],
        )

    def _k_tea_leaf_residual(self) -> None:
        b = self.buffers
        self._run("residual", b[F.R], b[F.U0], b[F.U], b[F.KX], b[F.KY])

    def _k_cg_init(self) -> float:
        b = self.buffers
        return self._run_reduce(
            "cg_init", b[F.U], b[F.U0], b[F.W], b[F.R], b[F.P], b[F.KX], b[F.KY]
        )

    def _k_cg_calc_w(self) -> float:
        b = self.buffers
        return self._run_reduce("cg_calc_w", b[F.P], b[F.W], b[F.KX], b[F.KY])

    def _k_cg_calc_ur(self, alpha: float) -> float:
        b = self.buffers
        return self._run_reduce("cg_calc_ur", alpha, b[F.U], b[F.R], b[F.P], b[F.W])

    def _k_cg_calc_p(self, beta: float) -> None:
        self._run("axpy", beta, self.buffers[F.P], self.buffers[F.R])

    def _k_ppcg_calc_p(self, beta: float) -> None:
        self._run("axpy", beta, self.buffers[F.P], self.buffers[F.Z])

    def _k_cheby_init(self, theta: float) -> None:
        b = self.buffers
        self._run("cheby_init", theta, b[F.U], b[F.U0], b[F.R], b[F.SD], b[F.KX], b[F.KY])
        self._run("add", b[F.U], b[F.SD])

    def _k_cheby_iterate(self, alpha: float, beta: float) -> None:
        b = self.buffers
        self._run("cheby_calc_r", b[F.R], b[F.SD], b[F.KX], b[F.KY])
        self._run("cheby_calc_sd_u", alpha, beta, b[F.SD], b[F.R], b[F.U])

    def _k_ppcg_precon_init(self, theta: float) -> None:
        b = self.buffers
        self._run("ppcg_precon_init", theta, b[F.W], b[F.SD], b[F.Z], b[F.R])

    def _k_ppcg_precon_inner(self, alpha: float, beta: float) -> None:
        b = self.buffers
        self._run("cheby_calc_r", b[F.W], b[F.SD], b[F.KX], b[F.KY])
        self._run("cheby_calc_sd_u", alpha, beta, b[F.SD], b[F.W], b[F.Z])

    def _k_cg_precon_jacobi(self) -> None:
        b = self.buffers
        self._run("cg_precon", b[F.Z], b[F.R], b[F.KX], b[F.KY])

    def _k_jacobi_iterate(self) -> float:
        b = self.buffers
        return self._run_reduce("jacobi", b[F.U], b[F.R], b[F.U0], b[F.KX], b[F.KY])

    def _k_norm2_field(self, name: str) -> float:
        return self._run_reduce("dot", self.buffers[name], self.buffers[name])

    def _k_dot_fields(self, a: str, b: str) -> float:
        return self._run_reduce("dot", self.buffers[a], self.buffers[b])

    def _k_copy_field(self, src: str, dst: str) -> None:
        kernel = self.kernels["copy"]
        total = self._pitch * self._rows
        kernel.set_arg(0, total)
        kernel.set_arg(1, self.buffers[dst])
        kernel.set_arg(2, self.buffers[src])
        self.queue.enqueue_nd_range_kernel(
            kernel, self._round_up(total), self.local_size, scalar=False
        )

    def _k_tea_leaf_finalise(self) -> None:
        b = self.buffers
        self._run("finalise", b[F.ENERGY1], b[F.U], b[F.DENSITY])

    def _k_field_summary(self) -> tuple[float, float, float, float]:
        b = self.buffers
        terms = []
        for mode in range(4):
            terms.append(
                self._run_reduce(
                    "summary_term",
                    mode,
                    self.grid.cell_volume,
                    b[F.DENSITY],
                    b[F.ENERGY1],
                    b[F.U],
                )
            )
        return tuple(terms)  # type: ignore[return-value]


class OpenCLModel(ProgrammingModel):
    capabilities = Capabilities(
        name="opencl",
        display_name="OpenCL",
        directive_based=False,
        language="C (kernels) / any (host)",
        support={
            DeviceKind.CPU: Support.YES,
            DeviceKind.GPU: Support.YES,
            DeviceKind.KNC: Support.OFFLOAD,
        },
        cross_platform=True,
        summary="The open low-level standard; the most functionally portable "
        "model in the study (also AMD GPUs, FPGAs).",
    )

    def make_port(self, grid: Grid2D, trace: Trace | None = None) -> OpenCLPort:
        return OpenCLPort(grid, trace)


register_model(OpenCLModel())
