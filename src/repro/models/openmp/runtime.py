"""OpenMP 3.0 execution semantics: thread teams, static schedule, reductions.

``parallel_for`` corresponds to ``#pragma omp parallel for schedule(static)``
over an outer loop: the iteration range is split into one contiguous chunk
per thread, and the loop body runs once per chunk.  ``parallel_reduce``
additionally gives each thread a private partial that is combined at the
join, which is exactly OpenMP's ``reduction(+:...)`` clause — the partial
ordering therefore matches a real static-scheduled OpenMP reduction rather
than a single serial sum.
"""

from __future__ import annotations

import functools
from typing import Callable, TypeVar

import numpy as np

from repro.models.reduction import deterministic_sum

T = TypeVar("T")

#: Default team size: the paper's CPU runs use dual-socket E5-2670 with 16
#: threads and compact affinity (§4.1).
DEFAULT_NUM_THREADS = 16


def static_chunks(n: int, nthreads: int) -> list[tuple[int, int]]:
    """Contiguous ``[start, end)`` chunks of ``range(n)``, one per thread.

    Matches OpenMP's ``schedule(static)`` without a chunk size: the first
    ``n % nthreads`` chunks get one extra iteration.  Threads with no work
    receive no chunk (empty chunks are skipped, as a real runtime would).
    """
    if n < 0:
        raise ValueError(f"iteration count must be non-negative, got {n}")
    if nthreads < 1:
        raise ValueError(f"thread count must be positive, got {nthreads}")
    base, extra = divmod(n, nthreads)
    chunks: list[tuple[int, int]] = []
    start = 0
    for t in range(nthreads):
        size = base + (1 if t < extra else 0)
        if size == 0:
            continue
        chunks.append((start, start + size))
        start += size
    return chunks


class OpenMPRuntime:
    """A fork-join thread team with static scheduling.

    Chunks execute sequentially in thread order (the emulation is
    deterministic), and the *decomposition* is faithful to a
    static-scheduled OpenMP team of ``num_threads`` threads.  Reduction
    partials are finalised through the shared deterministic pairwise tree
    (:mod:`repro.models.reduction`) rather than the thread-join order, so
    reduction scalars are bitwise identical across all ports.
    """

    def __init__(self, num_threads: int = DEFAULT_NUM_THREADS) -> None:
        if num_threads < 1:
            raise ValueError(f"num_threads must be positive, got {num_threads}")
        self.num_threads = num_threads
        #: Number of parallel regions entered (fork-join overhead counter).
        self.regions = 0

    def parallel_for(self, n: int, body: Callable[[int, int], None]) -> None:
        """``#pragma omp parallel for schedule(static)`` over ``range(n)``.

        ``body(start, end)`` processes the contiguous chunk ``[start, end)``.
        """
        self.regions += 1
        for start, end in static_chunks(n, self.num_threads):
            body(start, end)

    def parallel_reduce(
        self,
        n: int,
        body: Callable[[int, int], float],
        initial: float = 0.0,
    ) -> float:
        """``parallel for reduction(+:acc)``: combine per-thread partials.

        Each chunk's contribution — a scalar, or a per-iteration array for
        bodies that expose their elementwise terms — is buffered in chunk
        order (chunks are contiguous and ordered, so the concatenation is
        the canonical iteration-order contribution vector) and finalised by
        the shared deterministic pairwise tree.
        """
        self.regions += 1
        parts = [
            np.atleast_1d(np.asarray(body(start, end), dtype=np.float64)).ravel()
            for start, end in static_chunks(n, self.num_threads)
        ]
        if not parts:
            return initial
        return initial + deterministic_sum(np.concatenate(parts))

    def parallel_reduce_multi(
        self,
        n: int,
        body: Callable[[int, int], tuple[float, ...]],
        width: int,
    ) -> tuple[float, ...]:
        """Multi-variable reduction (``reduction(+:a,b,c)``)."""
        parts: list[list[np.ndarray]] = [[] for _ in range(width)]
        self.regions += 1
        for start, end in static_chunks(n, self.num_threads):
            partial = body(start, end)
            if len(partial) != width:
                raise ValueError(
                    f"reduction body returned {len(partial)} values, expected {width}"
                )
            for i, v in enumerate(partial):
                parts[i].append(np.atleast_1d(np.asarray(v, dtype=np.float64)).ravel())
        return tuple(
            deterministic_sum(np.concatenate(p)) if p else 0.0 for p in parts
        )


def simd(fn: Callable[..., T]) -> Callable[..., T]:
    """``#pragma omp simd`` marker.

    Numerically a no-op (the NumPy body is already vector code); it tags the
    wrapped loop body so ports can declare which loops they force-vectorise.
    The RAJA-SIMD proof-of-concept variant from §4.1 uses this marker.
    """

    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        return fn(*args, **kwargs)

    wrapper.__omp_simd__ = True  # type: ignore[attr-defined]
    return wrapper


def is_simd(fn: Callable) -> bool:
    """True when a loop body has been marked with :func:`simd`."""
    return getattr(fn, "__omp_simd__", False)
