"""OpenMP 4.0 ``target`` offload semantics (§2.1 of the paper).

Implements the device data environment of the 4.0 accelerator model:

* ``omp target data map(...)`` — :class:`TargetDataRegion`, a lexical scope
  that maps arrays onto the device for its duration so multiple target
  regions can reuse resident data (the paper places one at the highest
  possible scope, above the timestep loop's solve);
* ``omp target`` — :func:`target`, entered once per offloaded kernel; each
  entry is traced as a REGION event because the paper found "a performance
  overhead dependent upon the number of target invocations" (§3.1) and each
  region is handled synchronously (no ``nowait`` until 4.5);
* ``omp target update to/from`` — explicit consistency copies.

The "device" memory is a distinct set of arrays: host reads of mapped data
without an ``update from`` observe stale values, exactly like a real
discrete accelerator.  This is enforced, not simulated — tests rely on it.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

import numpy as np

from repro.models.tracing import Trace, TransferDirection
from repro.util.errors import ModelError


class DeviceDataEnvironment:
    """The set of host arrays currently mapped onto the device."""

    def __init__(self, trace: Trace) -> None:
        self.trace = trace
        self._host: dict[str, np.ndarray] = {}
        self._device: dict[str, np.ndarray] = {}
        self._copy_back: dict[str, bool] = {}

    # ------------------------------------------------------------------ #
    def is_mapped(self, name: str) -> bool:
        return name in self._device

    def map(
        self,
        name: str,
        host_array: np.ndarray,
        to: bool = True,
        from_: bool = False,
    ) -> None:
        """``map(to:)`` / ``map(from:)`` / ``map(tofrom:)`` / ``map(alloc:)``.

        ``to=False, from_=False`` is ``alloc`` (device storage, no copies).
        """
        if name in self._device:
            raise ModelError(f"array '{name}' is already mapped")
        self._host[name] = host_array
        if to:
            self._device[name] = host_array.copy()
            self.trace.transfer(f"map(to:{name})", host_array.nbytes, TransferDirection.H2D)
        else:
            self._device[name] = np.zeros_like(host_array)
        self._copy_back[name] = from_

    def unmap(self, name: str) -> None:
        """Leave the map scope; ``from``-mapped arrays copy back to host."""
        if name not in self._device:
            raise ModelError(f"array '{name}' is not mapped")
        if self._copy_back[name]:
            dev = self._device[name]
            self._host[name][...] = dev
            self.trace.transfer(f"map(from:{name})", dev.nbytes, TransferDirection.D2H)
        del self._device[name], self._host[name], self._copy_back[name]

    def device(self, name: str) -> np.ndarray:
        """The device-resident array (only valid inside a target region)."""
        try:
            return self._device[name]
        except KeyError:
            raise ModelError(
                f"array '{name}' used in a target region but not mapped"
            ) from None

    def update_to(self, name: str) -> None:
        """``omp target update to(name)``: refresh the device copy."""
        dev = self.device(name)
        dev[...] = self._host[name]
        self.trace.transfer(f"update(to:{name})", dev.nbytes, TransferDirection.H2D)

    def update_from(self, name: str) -> None:
        """``omp target update from(name)``: refresh the host copy."""
        dev = self.device(name)
        self._host[name][...] = dev
        self.trace.transfer(f"update(from:{name})", dev.nbytes, TransferDirection.D2H)

    def mapped_names(self) -> list[str]:
        return sorted(self._device)


class TargetDataRegion:
    """Lexically-scoped ``omp target data`` region (4.0: structured only).

    The 4.0 standard restricts target data regions to lexically structured
    scopes (§3.1) — this class is a context manager for exactly that reason;
    the unstructured ``target enter/exit data`` of 4.5 is deliberately not
    provided.
    """

    def __init__(
        self,
        env: DeviceDataEnvironment,
        map_to: dict[str, np.ndarray] | None = None,
        map_tofrom: dict[str, np.ndarray] | None = None,
        map_alloc: dict[str, np.ndarray] | None = None,
    ) -> None:
        self.env = env
        self._to = dict(map_to or {})
        self._tofrom = dict(map_tofrom or {})
        self._alloc = dict(map_alloc or {})
        self._entered = False

    def __enter__(self) -> "TargetDataRegion":
        if self._entered:
            raise ModelError("target data region entered twice")
        self._entered = True
        for name, arr in self._to.items():
            self.env.map(name, arr, to=True, from_=False)
        for name, arr in self._tofrom.items():
            self.env.map(name, arr, to=True, from_=True)
        for name, arr in self._alloc.items():
            self.env.map(name, arr, to=False, from_=False)
        return self

    def __exit__(self, *exc) -> None:
        for name in [*self._to, *self._tofrom, *self._alloc]:
            self.env.unmap(name)
        self._entered = False


@contextmanager
def target(
    env: DeviceDataEnvironment,
    trace: Trace,
    name: str,
    nowait: bool = False,
) -> Iterator[DeviceDataEnvironment]:
    """``omp target [nowait]``: one offloaded region.

    Yields the device data environment; the body must fetch its arrays via
    ``env.device(...)`` (unmapped uses raise, like a 4.0 compiler would
    reject missing map clauses for non-scalar data).

    ``nowait`` is the OpenMP **4.5** clause the paper anticipates (§3.1):
    "ensuring that a stream of target invocations can be queued on the
    device for immediate back-to-back execution.  We hypothesise that this
    functionality will have a significant influence on the target
    overheads."  Asynchronous regions are traced with a distinct label so
    the performance model can charge the pipelined (much smaller)
    per-invocation cost.
    """
    trace.region(f"{'target_nowait' if nowait else 'target'}:{name}")
    yield env
    # Synchronous 4.0 regions imply device completion on return; nowait
    # regions queue and the eventual taskwait pays one sync for the batch.
