"""OpenMP emulation: a shared-memory fork-join runtime (3.0) and the
4.0 ``target`` offload directive layer.

The runtime mimics OpenMP's execution semantics — static scheduling of
contiguous iteration chunks across a thread team, per-thread partial
reductions combined at the join — while executing each chunk as vectorised
NumPy (the Python analogue of what the compiler's vectoriser does inside
each thread).
"""

from repro.models.openmp.runtime import OpenMPRuntime, simd
from repro.models.openmp.directives import (
    DeviceDataEnvironment,
    TargetDataRegion,
    target,
)

__all__ = [
    "OpenMPRuntime",
    "simd",
    "DeviceDataEnvironment",
    "TargetDataRegion",
    "target",
]
