"""OpenCL programs and kernels with explicit argument binding.

TeaLeaf's OpenCL host code must create program and kernel objects and set
every kernel argument by position before each launch — the boilerplate the
paper counts against the model (§2.5, §3.6).  The emulation keeps all of
it observable: a kernel launched with unset or stale-typed arguments
raises, as ``clSetKernelArg``/``clEnqueueNDRangeKernel`` would.

Kernel *source* is a Python callable ``fn(gid, *args)`` taking the global
work-item id batch (a NumPy int array; singleton batches in scalar mode)
plus the bound arguments (device views for buffers, plain scalars for
values).  Reduction kernels return per-work-item contributions.
"""

from __future__ import annotations

import inspect
from typing import Callable

import numpy as np

from repro.models.opencl.runtime import Buffer, Context
from repro.util.errors import ModelError


class Program:
    """A built program: a named collection of kernel functions."""

    def __init__(self, context: Context, sources: dict[str, Callable]) -> None:
        if not sources:
            raise ModelError("program has no kernel sources")
        self.context = context
        self._sources = dict(sources)
        self._built = False
        self.build_options: str = ""

    def build(self, options: str = "") -> "Program":
        """clBuildProgram: validates every kernel's signature."""
        for name, fn in self._sources.items():
            if not callable(fn):
                raise ModelError(f"kernel '{name}' source is not callable")
            params = list(inspect.signature(fn).parameters)
            if not params:
                raise ModelError(
                    f"kernel '{name}' must take the global id as first parameter"
                )
        self.build_options = options
        self._built = True
        return self

    def create_kernel(self, name: str) -> "Kernel":
        """clCreateKernel."""
        if not self._built:
            raise ModelError("program must be built before creating kernels")
        try:
            fn = self._sources[name]
        except KeyError:
            raise ModelError(
                f"no kernel '{name}' in program "
                f"(have: {', '.join(sorted(self._sources))})"
            ) from None
        return Kernel(name, fn)


class Kernel:
    """A kernel object with positional argument slots."""

    def __init__(self, name: str, fn: Callable) -> None:
        self.name = name
        self.fn = fn
        # Number of arguments after the gid parameter.
        self.num_args = len(inspect.signature(fn).parameters) - 1
        self._args: dict[int, object] = {}

    def set_arg(self, index: int, value: Buffer | float | int) -> None:
        """clSetKernelArg."""
        if not (0 <= index < self.num_args):
            raise ModelError(
                f"kernel '{self.name}' has {self.num_args} args; index {index} invalid"
            )
        self._args[index] = value

    def invoke(self, gid: np.ndarray):
        """Run the kernel body over a gid batch (queue-internal)."""
        missing = [i for i in range(self.num_args) if i not in self._args]
        if missing:
            raise ModelError(
                f"kernel '{self.name}' launched with unset args {missing}"
            )
        values = [
            a.device_view if isinstance(a, Buffer) else a
            for a in (self._args[i] for i in range(self.num_args))
        ]
        return self.fn(gid, *values)
