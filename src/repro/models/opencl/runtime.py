"""OpenCL execution & memory model: contexts, buffers, command queues.

Device memory is a distinct allocation from host memory: a :class:`Buffer`
can only be filled and read through queue transfer operations, which are
traced.  The :class:`CommandQueue` is in-order (TeaLeaf's queues are), so
``finish()`` is a semantic no-op recorded for fidelity.
"""

from __future__ import annotations

from enum import Flag, auto
from typing import TYPE_CHECKING

import numpy as np

from repro.models.opencl.platform import Device
from repro.models.tracing import Trace, TransferDirection
from repro.util.errors import ModelError

if TYPE_CHECKING:
    from repro.models.opencl.program import Kernel


class MemFlags(Flag):
    """cl_mem_flags subset used by TeaLeaf."""

    READ_ONLY = auto()
    WRITE_ONLY = auto()
    READ_WRITE = auto()
    COPY_HOST_PTR = auto()


class Context:
    """An OpenCL context: devices + allocations + the event trace."""

    def __init__(self, devices: list[Device], trace: Trace | None = None) -> None:
        if not devices:
            raise ModelError("a context needs at least one device")
        self.devices = list(devices)
        self.trace = trace if trace is not None else Trace()
        self._buffers: list[Buffer] = []

    def register(self, buffer: "Buffer") -> None:
        self._buffers.append(buffer)

    @property
    def allocated_bytes(self) -> int:
        return sum(b.nbytes for b in self._buffers if not b.released)


class Buffer:
    """Device memory.  Host access only through queue transfers."""

    def __init__(
        self,
        context: Context,
        flags: MemFlags,
        size: int | None = None,
        hostbuf: np.ndarray | None = None,
    ) -> None:
        if size is None and hostbuf is None:
            raise ModelError("Buffer needs a size or a hostbuf")
        if hostbuf is not None:
            self._data = np.array(hostbuf, dtype=np.float64).ravel().copy()
            if MemFlags.COPY_HOST_PTR in flags:
                context.trace.transfer(
                    "clCreateBuffer(COPY_HOST_PTR)",
                    self._data.nbytes,
                    TransferDirection.H2D,
                )
        else:
            if size is None or size <= 0:
                raise ModelError(f"Buffer size must be positive, got {size}")
            if size % 8:
                raise ModelError("Buffer size must be a whole number of float64")
            self._data = np.zeros(size // 8, dtype=np.float64)
        self.context = context
        self.flags = flags
        self.released = False
        context.register(self)

    @classmethod
    def adopt(
        cls, context: Context, flags: MemFlags, buffer: np.ndarray
    ) -> "Buffer":
        """Wrap externally-owned device words (an arena row) as a Buffer.

        No allocation and no H2D transfer happen — the bytes already
        live in the arena; releasing only retires the handle.
        """
        buf = cls.__new__(cls)
        buf._data = buffer
        buf.context = context
        buf.flags = flags
        buf.released = False
        context.register(buf)
        return buf

    @property
    def nbytes(self) -> int:
        return self._data.nbytes

    @property
    def device_view(self) -> np.ndarray:
        """The device-side array (kernels use this; host code must not)."""
        if self.released:
            raise ModelError("use of a released Buffer")
        return self._data

    def release(self) -> None:
        """clReleaseMemObject."""
        self.released = True


class CommandQueue:
    """An in-order command queue on one device of a context."""

    def __init__(self, context: Context, device: Device) -> None:
        if device not in context.devices:
            raise ModelError(f"device {device.name} is not part of this context")
        self.context = context
        self.device = device
        self.trace = context.trace
        self._pending = 0

    # ------------------------------------------------------------------ #
    # transfers
    # ------------------------------------------------------------------ #
    def enqueue_write_buffer(self, buffer: Buffer, host_array: np.ndarray) -> None:
        flat = np.asarray(host_array, dtype=np.float64).ravel()
        if flat.size != buffer.device_view.size:
            raise ModelError(
                f"write of {flat.size} doubles into buffer of {buffer.device_view.size}"
            )
        buffer.device_view[...] = flat
        self.trace.transfer("clEnqueueWriteBuffer", flat.nbytes, TransferDirection.H2D)

    def enqueue_read_buffer(self, buffer: Buffer, host_array: np.ndarray) -> None:
        flat = host_array.reshape(-1)
        if flat.size != buffer.device_view.size:
            raise ModelError(
                f"read of {buffer.device_view.size} doubles into host array of {flat.size}"
            )
        flat[...] = buffer.device_view
        self.trace.transfer("clEnqueueReadBuffer", flat.nbytes, TransferDirection.D2H)

    def enqueue_copy_buffer(self, src: Buffer, dst: Buffer) -> None:
        dst.device_view[...] = src.device_view

    # ------------------------------------------------------------------ #
    # kernel launches
    # ------------------------------------------------------------------ #
    def enqueue_nd_range_kernel(
        self,
        kernel: "Kernel",
        global_size: int,
        local_size: int,
        scalar: bool = False,
    ) -> None:
        """Launch a kernel over ``global_size`` work items.

        ``global_size`` must be a multiple of ``local_size`` (the classic
        OpenCL 1.x requirement — ports round up and guard overspill in the
        kernel).  ``scalar=True`` dispatches one singleton work item at a
        time, the slow validation mode proving the batch form equivalent.
        """
        self._check_sizes(global_size, local_size)
        if scalar:
            for gid in range(global_size):
                kernel.invoke(np.array([gid], dtype=np.int64))
        else:
            kernel.invoke(np.arange(global_size, dtype=np.int64))
        self._pending += 1

    def enqueue_reduction_kernel(
        self,
        kernel: "Kernel",
        global_size: int,
        local_size: int,
        partials: Buffer,
        scalar: bool = False,
    ) -> int:
        """Launch a manually-written reduction kernel (§3.6).

        The kernel returns one contribution per work item; each work group
        combines its items with a local-memory tree and the work-group
        leader writes one partial to ``partials``.  Returns the number of
        partials written (for the host's final combine).
        """
        self._check_sizes(global_size, local_size)
        num_groups = global_size // local_size
        if partials.device_view.size < num_groups:
            raise ModelError(
                f"partials buffer holds {partials.device_view.size} doubles, "
                f"need {num_groups}"
            )
        if scalar:
            contributions = np.concatenate(
                [
                    np.atleast_1d(kernel.invoke(np.array([gid], dtype=np.int64)))
                    for gid in range(global_size)
                ]
            )
        else:
            contributions = kernel.invoke(np.arange(global_size, dtype=np.int64))
        if contributions is None or np.size(contributions) != global_size:
            raise ModelError(
                f"reduction kernel '{kernel.name}' must return one value per work item"
            )
        # Local-memory tree combine within each work group.
        groups = np.asarray(contributions, dtype=np.float64).reshape(
            num_groups, local_size
        )
        stride = local_size // 2
        while stride >= 1:
            groups[:, :stride] += groups[:, stride : 2 * stride]
            if stride * 2 < groups.shape[1]:
                # odd tail folds onto lane 0, as the classic kernel does
                groups[:, 0] += groups[:, stride * 2 :].sum(axis=1)
            groups = groups[:, :stride]
            stride //= 2
        partials.device_view[:num_groups] = groups[:, 0]
        self.trace.reduction_pass(f"workgroup_reduce:{kernel.name}", num_groups * 8)
        self._pending += 1
        return num_groups

    def enqueue_builtin_reduction_kernel(
        self,
        kernel: "Kernel",
        global_size: int,
        local_size: int,
        partials: Buffer,
    ) -> int:
        """OpenCL 2.0 ``work_group_reduce_add`` path (§3.6).

        The paper notes "OpenCL 2.0 includes built-in workgroup reductions
        that can be implemented by particular vendors, and may offer an
        important improvement for performance portability" — with the
        built-in, the kernel no longer carries hand-written tree code and
        the vendor combines each group.  Functionally identical to the
        manual tree (the tests assert bit-equal partials); the trace marks
        the pass as vendor-provided so a performance model could price it
        differently.
        """
        self._check_sizes(global_size, local_size)
        num_groups = global_size // local_size
        if partials.device_view.size < num_groups:
            raise ModelError(
                f"partials buffer holds {partials.device_view.size} doubles, "
                f"need {num_groups}"
            )
        contributions = kernel.invoke(np.arange(global_size, dtype=np.int64))
        if contributions is None or np.size(contributions) != global_size:
            raise ModelError(
                f"reduction kernel '{kernel.name}' must return one value per work item"
            )
        groups = np.asarray(contributions, dtype=np.float64).reshape(
            num_groups, local_size
        )
        # The vendor's combine: same tree the manual kernels write, so the
        # floating point result is identical on this implementation.
        stride = local_size // 2
        work = groups.copy()
        while stride >= 1:
            work[:, :stride] += work[:, stride : 2 * stride]
            if stride * 2 < work.shape[1]:
                work[:, 0] += work[:, stride * 2 :].sum(axis=1)
            work = work[:, :stride]
            stride //= 2
        partials.device_view[:num_groups] = work[:, 0]
        self.trace.reduction_pass(
            f"work_group_reduce_add:{kernel.name}", num_groups * 8
        )
        self._pending += 1
        return num_groups

    def finish(self) -> None:
        """clFinish: block until the queue drains (in-order: immediate)."""
        self._pending = 0

    # ------------------------------------------------------------------ #
    @staticmethod
    def _check_sizes(global_size: int, local_size: int) -> None:
        if global_size <= 0 or local_size <= 0:
            raise ModelError(
                f"invalid ND-range: global={global_size}, local={local_size}"
            )
        if global_size % local_size:
            raise ModelError(
                f"global size {global_size} is not a multiple of local size {local_size}"
            )
