"""OpenCL emulation (§2.5 of the paper).

Implements the three OpenCL abstract models the paper describes:

* **platform model** — platforms containing devices containing compute
  units (:mod:`repro.models.opencl.platform`);
* **execution model** — contexts, in-order command queues, kernels with
  explicit positional argument binding, ND-range launches with work-group
  decomposition and overspill (:mod:`repro.models.opencl.runtime`,
  :mod:`repro.models.opencl.program`);
* **memory model** — host and device memory are distinct; all movement
  goes through ``enqueue_read/write_buffer`` and is traced.

Reductions "have to be manually written" in OpenCL (§3.6): the queue's
``enqueue_reduction_kernel`` performs the work-group local-memory tree
combine and leaves one partial per work group in an output buffer for the
host to finish — precisely the structure of the TeaLeaf OpenCL kernels.
"""

from repro.models.opencl.platform import Device, DeviceType, Platform, get_platforms
from repro.models.opencl.runtime import Buffer, CommandQueue, Context, MemFlags
from repro.models.opencl.program import Kernel, Program

__all__ = [
    "Device",
    "DeviceType",
    "Platform",
    "get_platforms",
    "Context",
    "CommandQueue",
    "Buffer",
    "MemFlags",
    "Program",
    "Kernel",
]
