"""OpenCL platform model: platforms, devices, compute units.

The emulated installation mirrors the paper's testbeds: an Intel platform
exposing the dual-socket Sandy Bridge CPU and the KNC accelerator (which
OpenCL drives in *offload* mode, Table 1), and an NVIDIA platform exposing
the Tesla K20X.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.util.errors import ModelError


class DeviceType(Enum):
    """cl_device_type of the devices TeaLeaf targets."""

    CPU = "CL_DEVICE_TYPE_CPU"
    GPU = "CL_DEVICE_TYPE_GPU"
    ACCELERATOR = "CL_DEVICE_TYPE_ACCELERATOR"


@dataclass(frozen=True)
class Device:
    """One OpenCL device."""

    name: str
    device_type: DeviceType
    compute_units: int
    max_work_group_size: int
    global_mem_bytes: int

    def __post_init__(self) -> None:
        if self.compute_units < 1:
            raise ModelError(f"device {self.name}: compute_units must be >= 1")
        if self.max_work_group_size < 1:
            raise ModelError(f"device {self.name}: bad max_work_group_size")


@dataclass(frozen=True)
class Platform:
    """One OpenCL platform (vendor implementation)."""

    name: str
    vendor: str
    devices: tuple[Device, ...]

    def get_devices(self, device_type: DeviceType | None = None) -> list[Device]:
        if device_type is None:
            return list(self.devices)
        return [d for d in self.devices if d.device_type is device_type]


#: The emulated OpenCL installation (the paper's testbed devices).
_PLATFORMS = (
    Platform(
        name="Intel(R) OpenCL",
        vendor="Intel(R) Corporation",
        devices=(
            Device(
                name="Intel(R) Xeon(R) CPU E5-2670 0 @ 2.60GHz x 2",
                device_type=DeviceType.CPU,
                compute_units=32,  # 16 cores x 2 hyperthreads
                max_work_group_size=8192,
                global_mem_bytes=64 * 1024**3,
            ),
            Device(
                name="Intel(R) Many Integrated Core Acceleration Card (KNC)",
                device_type=DeviceType.ACCELERATOR,
                compute_units=240,
                max_work_group_size=1024,
                global_mem_bytes=8 * 1024**3,
            ),
        ),
    ),
    Platform(
        name="NVIDIA CUDA",
        vendor="NVIDIA Corporation",
        devices=(
            Device(
                name="Tesla K20X",
                device_type=DeviceType.GPU,
                compute_units=14,  # SMX count
                max_work_group_size=1024,
                global_mem_bytes=6 * 1024**3,
            ),
        ),
    ),
)


def get_platforms() -> list[Platform]:
    """``clGetPlatformIDs``: every platform of the emulated installation."""
    return list(_PLATFORMS)


def find_device(device_type: DeviceType) -> tuple[Platform, Device]:
    """First (platform, device) pair of the requested type."""
    for platform in _PLATFORMS:
        devices = platform.get_devices(device_type)
        if devices:
            return platform, devices[0]
    raise ModelError(f"no device of type {device_type.value} available")
