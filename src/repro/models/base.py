"""Port interface, capability metadata (Table 1), and the model registry.

A *port* is one implementation of the TeaLeaf kernel set through one
programming model's abstractions.  The solvers and the timestep driver in
:mod:`repro.core` are written purely against :class:`Port`, exactly as the
paper keeps "core solver logic and parameters ... consistent between ports".
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Mapping

import numpy as np

from repro.core import fields as F
from repro.core import operators as ops
from repro.core.grid import Grid2D
from repro.core.kernels import KERNELS, KernelSpec
from repro.models.tracing import Trace, TransferDirection
from repro.util.errors import ModelError


class DeviceKind(Enum):
    """The three device families of the paper's evaluation (Table 2)."""

    CPU = "cpu"
    GPU = "gpu"
    KNC = "knc"


class Support(Enum):
    """Functional-portability levels from Table 1."""

    YES = "Yes"
    NATIVE = "Native"
    OFFLOAD = "Offload"
    EXPERIMENTAL = "Experimental"
    NO = ""


@dataclass(frozen=True)
class Capabilities:
    """Static description of a programming model (Table 1 row + §2 facts)."""

    name: str
    display_name: str
    directive_based: bool
    language: str
    support: Mapping[DeviceKind, Support]
    #: Models the paper classes as performance portable / cross platform
    #: (§3: cross-platform vs platform-specific).
    cross_platform: bool
    #: One-line description used in reports.
    summary: str = ""

    def supports(self, device: DeviceKind) -> bool:
        return self.support.get(device, Support.NO) is not Support.NO


class Port(ABC):
    """One TeaLeaf port: the kernel set realised through one model's API.

    Concrete ports store their fields however their model dictates (raw
    NumPy for host models, Views/Buffers/device allocations for offload
    models) but must expose host copies through :meth:`read_field` /
    :meth:`write_field` so the driver, solvers, halo exchange and tests can
    interoperate.
    """

    #: Registry name of the model this port belongs to (set by subclasses).
    model_name: str = "?"

    def __init__(self, grid: Grid2D, trace: Trace | None = None) -> None:
        self.grid = grid
        self.trace = trace if trace is not None else Trace()
        self.h = grid.halo

    # ------------------------------------------------------------------ #
    # trace helpers
    # ------------------------------------------------------------------ #
    def _launch(self, kernel_name: str, cells: int | None = None) -> KernelSpec:
        """Record one kernel launch; returns the spec for footprint reuse."""
        spec = KERNELS[kernel_name]
        n = self.grid.cells if cells is None else cells
        self.trace.kernel(
            kernel_name,
            bytes_moved=spec.bytes_for(n),
            flops=spec.flops * n,
            cells=n,
            has_reduction=spec.has_reduction,
        )
        return spec

    def _transfer(self, name: str, nbytes: int, direction: TransferDirection) -> None:
        self.trace.transfer(name, nbytes, direction)

    def _halo_cells(self, depth: int) -> int:
        """Cells touched when refreshing a depth-``depth`` halo of one field."""
        g = self.grid
        return 2 * depth * (g.nx + g.ny) + 4 * depth * depth

    # ------------------------------------------------------------------ #
    # data interface
    # ------------------------------------------------------------------ #
    @abstractmethod
    def set_state(self, density: np.ndarray, energy0: np.ndarray) -> None:
        """Install the generated initial condition (host -> device)."""

    @abstractmethod
    def read_field(self, name: str) -> np.ndarray:
        """Host copy of a field (full halo shape).  May trigger a D2H copy."""

    @abstractmethod
    def write_field(self, name: str, values: np.ndarray) -> None:
        """Overwrite a field from a host array.  May trigger an H2D copy."""

    # ------------------------------------------------------------------ #
    # residency (offload models override)
    # ------------------------------------------------------------------ #
    def begin_solve(self) -> None:
        """Enter the solve-scope data region (no-op for host models)."""

    def end_solve(self) -> None:
        """Leave the solve-scope data region (no-op for host models)."""

    # ------------------------------------------------------------------ #
    # the TeaLeaf kernel set
    # ------------------------------------------------------------------ #
    @abstractmethod
    def set_field(self) -> None:
        """energy1 = energy0."""

    @abstractmethod
    def tea_leaf_init(self, dt: float, coefficient: str) -> None:
        """u = u0 = energy1*density; build kx, ky with rx/ry folded in."""

    @abstractmethod
    def tea_leaf_residual(self) -> None:
        """r = u0 - A u."""

    @abstractmethod
    def cg_init(self) -> float:
        """w = A u; r = u0 - w; p = r; returns rro = r.r."""

    @abstractmethod
    def cg_calc_w(self) -> float:
        """w = A p; returns pw = p.w."""

    @abstractmethod
    def cg_calc_ur(self, alpha: float) -> float:
        """u += alpha p; r -= alpha w; returns rrn = r.r."""

    @abstractmethod
    def cg_calc_p(self, beta: float) -> None:
        """p = r + beta p."""

    @abstractmethod
    def cheby_init(self, theta: float) -> None:
        """r = u0 - A u; sd = r/theta; u += sd."""

    @abstractmethod
    def cheby_iterate(self, alpha: float, beta: float) -> None:
        """r -= A sd; sd = alpha sd + beta r; u += sd."""

    @abstractmethod
    def ppcg_precon_init(self, theta: float) -> None:
        """w = r; sd = w/theta; z = sd (start the inner Chebyshev solve)."""

    @abstractmethod
    def ppcg_precon_inner(self, alpha: float, beta: float) -> None:
        """w -= A sd; sd = alpha sd + beta w; z += sd."""

    @abstractmethod
    def ppcg_calc_p(self, beta: float) -> None:
        """p = z + beta p (the preconditioned direction update)."""

    @abstractmethod
    def cg_precon_jacobi(self) -> None:
        """z = r / diag(A): apply the diagonal (jac_diag) preconditioner."""

    @abstractmethod
    def jacobi_iterate(self) -> float:
        """u_new from neighbours of old u; returns sum |u_new - u_old|."""

    @abstractmethod
    def norm2_field(self, name: str) -> float:
        """Interior squared 2-norm of a field."""

    @abstractmethod
    def dot_fields(self, a: str, b: str) -> float:
        """Interior dot product of two fields."""

    @abstractmethod
    def copy_field(self, src: str, dst: str) -> None:
        """dst = src over the whole allocation."""

    @abstractmethod
    def tea_leaf_finalise(self) -> None:
        """energy1 = u / density."""

    @abstractmethod
    def field_summary(self) -> tuple[float, float, float, float]:
        """(volume, mass, internal energy, temperature) interior totals."""

    # ------------------------------------------------------------------ #
    # halo update
    # ------------------------------------------------------------------ #
    def update_halo(self, names: Iterable[str], depth: int) -> None:
        """Reflective physical-boundary refresh of the named fields.

        The default implementation reflects on the port's device-resident
        arrays via :meth:`_device_array`.  Neighbour exchange for decomposed
        runs is layered on top by :mod:`repro.comm`.
        """
        for name in names:
            ops.reflective_halo_update(self._device_array(name), self.h, depth)
            self._launch("halo_update", cells=self._halo_cells(depth))

    @abstractmethod
    def _device_array(self, name: str) -> np.ndarray:
        """The device-resident backing array for ``name`` (for halo logic)."""


class ProgrammingModel(ABC):
    """Factory + metadata for one programming model."""

    capabilities: Capabilities

    @property
    def name(self) -> str:
        return self.capabilities.name

    @abstractmethod
    def make_port(self, grid: Grid2D, trace: Trace | None = None) -> Port:
        """Create a fresh TeaLeaf port on ``grid``."""


_REGISTRY: dict[str, ProgrammingModel] = {}


def register_model(model: ProgrammingModel) -> ProgrammingModel:
    """Register a model instance under its capability name."""
    name = model.capabilities.name
    if name in _REGISTRY:
        raise ModelError(f"model '{name}' already registered")
    _REGISTRY[name] = model
    return model


def get_model(name: str) -> ProgrammingModel:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ModelError(
            f"unknown model '{name}'; available: {', '.join(sorted(_REGISTRY))}"
        ) from None


def available_models() -> list[str]:
    """Registered model names, stable order."""
    return sorted(_REGISTRY)


def make_port(model_name: str, grid: Grid2D, trace: Trace | None = None) -> Port:
    """Convenience: look up a model and create a port in one call."""
    return get_model(model_name).make_port(grid, trace)
