"""Port interface, capability metadata (Table 1), and the model registry.

A *port* is one implementation of the TeaLeaf kernel set through one
programming model's abstractions.  The solvers and the timestep driver in
:mod:`repro.core` are written purely against :class:`Port`, exactly as the
paper keeps "core solver logic and parameters ... consistent between ports".
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Mapping

import numpy as np

from repro.core import fields as F
from repro.core import operators as ops
from repro.core.grid import Grid2D
from repro.core.kernels import KERNELS, KernelSpec
from repro.models.plan import OPS, KernelCall, fused_spec
from repro.models.tracing import Trace, TransferDirection
from repro.util.errors import ModelError


class DeviceKind(Enum):
    """The three device families of the paper's evaluation (Table 2)."""

    CPU = "cpu"
    GPU = "gpu"
    KNC = "knc"


class Support(Enum):
    """Functional-portability levels from Table 1."""

    YES = "Yes"
    NATIVE = "Native"
    OFFLOAD = "Offload"
    EXPERIMENTAL = "Experimental"
    NO = ""


@dataclass(frozen=True)
class Capabilities:
    """Static description of a programming model (Table 1 row + §2 facts)."""

    name: str
    display_name: str
    directive_based: bool
    language: str
    support: Mapping[DeviceKind, Support]
    #: Models the paper classes as performance portable / cross platform
    #: (§3: cross-platform vs platform-specific).
    cross_platform: bool
    #: One-line description used in reports.
    summary: str = ""

    def supports(self, device: DeviceKind) -> bool:
        return self.support.get(device, Support.NO) is not Support.NO


class Port(ABC):
    """One TeaLeaf port: the kernel set realised through one model's API.

    Concrete ports store their fields however their model dictates (raw
    NumPy for host models, Views/Buffers/device allocations for offload
    models) but must expose host copies through :meth:`read_field` /
    :meth:`write_field` so the driver, solvers, halo exchange and tests can
    interoperate.

    Authoring a port means implementing the four data methods plus one
    ``_k_<op>`` primitive per entry of :data:`repro.models.plan.OPS` the
    deck's solver needs; the public kernel methods below are shared
    dispatch shims that trace the launch, run the primitive, and report
    written fields to the residency adapter.
    """

    #: Registry name of the model this port belongs to (set by subclasses).
    model_name: str = "?"

    #: Whether :class:`~repro.models.plan.PlanExecutor` may hand this port
    #: fused kernel groups (single-traversal elementwise models opt in).
    supports_fusion: bool = False

    #: Whether the executor may run codegen-lowered plans against this
    #: port.  Anything exposing its device storage through
    #: :meth:`_device_array` qualifies (the generated NumPy bodies write
    #: the same arrays the ``_k_*`` primitives do); decomposed ports,
    #: whose fields live per-chunk, opt out.
    supports_codegen: bool = True

    #: Whether the async overlap executor may split this port's sweeps
    #: into interior/boundary regions and run them around a posted halo
    #: exchange.  Anything with a :meth:`_device_array` qualifies;
    #: proxies that must observe every public kernel call (the lockstep
    #: numerics harness) opt out, and the executor records the fallback.
    supports_overlap: bool = True

    #: True for offload models whose begin/end_solve opens a real data
    #: region; gates barrier hoisting in the plan compiler.
    has_data_region: bool = False

    #: Executor the driver attaches for plan replay; solvers fall back to
    #: an unfused :class:`~repro.models.plan.PlanExecutor` when absent.
    plan_executor = None

    def __init__(self, grid: Grid2D, trace: Trace | None = None) -> None:
        self.grid = grid
        self.trace = trace if trace is not None else Trace()
        self.h = grid.halo
        self._residency_enabled = False

    # ------------------------------------------------------------------ #
    # trace helpers
    # ------------------------------------------------------------------ #
    def _launch(
        self,
        kernel_name: str,
        cells: int | None = None,
        spec: KernelSpec | None = None,
    ) -> KernelSpec:
        """Record one kernel launch; returns the spec for footprint reuse.

        ``spec`` overrides the :data:`KERNELS` lookup for synthesised
        launches (fused traversals) that have no table entry.
        """
        if spec is None:
            spec = KERNELS[kernel_name]
        n = self.grid.cells if cells is None else cells
        self.trace.kernel(
            kernel_name,
            bytes_moved=spec.bytes_for(n),
            flops=spec.flops * n,
            cells=n,
            has_reduction=spec.has_reduction,
        )
        return spec

    def _transfer(self, name: str, nbytes: int, direction: TransferDirection) -> None:
        self.trace.transfer(name, nbytes, direction)

    def _halo_cells(self, depth: int) -> int:
        """Cells touched when refreshing a depth-``depth`` halo of one field."""
        g = self.grid
        return 2 * depth * (g.nx + g.ny) + 4 * depth * depth

    # ------------------------------------------------------------------ #
    # data interface
    # ------------------------------------------------------------------ #
    @abstractmethod
    def set_state(self, density: np.ndarray, energy0: np.ndarray) -> None:
        """Install the generated initial condition (host -> device)."""

    @abstractmethod
    def read_field(self, name: str) -> np.ndarray:
        """Host copy of a field (full halo shape).  May trigger a D2H copy."""

    @abstractmethod
    def write_field(self, name: str, values: np.ndarray) -> None:
        """Overwrite a field from a host array.  May trigger an H2D copy."""

    # ------------------------------------------------------------------ #
    # residency (offload models override)
    # ------------------------------------------------------------------ #
    def begin_solve(self) -> None:
        """Enter the solve-scope data region (no-op for host models)."""

    def end_solve(self) -> None:
        """Leave the solve-scope data region (no-op for host models)."""

    def enable_residency_tracking(self, enabled: bool = True) -> None:
        """Opt into dirty-field tracking so redundant transfers are elided.

        Arms the dirty-set bookkeeping below.  Host ports have nothing to
        elide; explicit-copy offload ports (CUDA, OpenCL) consult the set
        in ``read_field`` to serve repeated host reads of unchanged fields
        from a mirror, and data-region ports (OpenMP 4.x, OpenACC) hold
        their solve data region open across timesteps instead.

        Results are unaffected either way: only redundant transfers (and
        their trace events) disappear.
        """
        self._residency_enabled = enabled
        #: Host-side copies of device fields, valid while the field is
        #: not in the dirty set.
        self._host_mirror: dict[str, np.ndarray] = {}
        #: Fields the device has written since their mirror was refreshed.
        #: Everything starts dirty so first reads populate the mirror.
        self._dirty_fields: set[str] = set(F.FIELD_ORDER)

    #: Arena slot aliasing: fields sharing each field's backing bytes
    #: (installed by :meth:`repro.models.arena.FieldArena.bind_port`).
    #: Writing a field invalidates its partners' mirrors too.
    _slot_partners: Mapping[str, tuple[str, ...]] = {}

    def _mark_dirty(self, names: Iterable[str]) -> None:
        """Residency hook: ``names`` were written on the device."""
        if self._residency_enabled:
            names = tuple(names)
            self._dirty_fields.update(names)
            if self._slot_partners:
                for name in names:
                    self._dirty_fields.update(self._slot_partners.get(name, ()))

    def _mirror_clean(self, name: str) -> np.ndarray | None:
        """The mirrored host copy of ``name`` if it is still valid."""
        if self._residency_enabled and name not in self._dirty_fields:
            return self._host_mirror.get(name)
        return None

    def _mirror_store(self, name: str, host: np.ndarray) -> None:
        """Record a freshly transferred host copy as the clean mirror."""
        if self._residency_enabled:
            self._host_mirror[name] = host.copy()
            self._dirty_fields.discard(name)

    def invalidate_residency(self, names: Iterable[str]) -> None:
        """Drop any cached residency state for ``names``.

        Called before an external restore (checkpoint rollback, rank
        recovery) overwrites fields through the host interface: the
        fields' host mirrors are stale and their device copies are about
        to be replaced, so the next consumer must take the upload/readback
        path.  A no-op when residency tracking is off.
        """
        if not self._residency_enabled:
            return
        for name in tuple(names):
            self._host_mirror.pop(name, None)
            self._dirty_fields.add(name)

    # ------------------------------------------------------------------ #
    # external field backing (arena-backed storage)
    # ------------------------------------------------------------------ #
    #: Whether :meth:`bind_field` can rebind this port's field storage
    #: onto externally-owned memory (a :class:`repro.models.arena.FieldArena`
    #: lane).  Ports whose device arrays are plain buffer views opt in;
    #: data-region ports (OpenMP 4.x, OpenACC), whose device environment
    #: *copies* host arrays on map, cannot alias external storage and
    #: stay False.
    supports_field_binding: bool = False

    def field_memory_order(self) -> str:
        """Element order of this port's 2-D field views over flat storage.

        ``"C"`` for row-major ports; Kokkos returns ``"F"`` under
        ``Layout.LEFT``.  The batch conductor uses it to build the
        lane-batched view with matching element placement.
        """
        return "C"

    def bind_field(self, name: str, flat: np.ndarray) -> None:
        """Rebind ``name``'s storage onto an external flat float64 buffer.

        ``flat`` has exactly ``grid.shape`` elements; the port must adopt
        it as the backing memory of the field (preserving current
        contents is the caller's concern — arena-backed fields are dead
        at bind time by construction).  Any cached residency mirror for
        the field is dropped: the bytes behind it just changed owners.
        """
        raise ModelError(
            f"port '{self.model_name}' does not support external field "
            f"backing (supports_field_binding=False)"
        )

    # ------------------------------------------------------------------ #
    # the dispatch core
    # ------------------------------------------------------------------ #
    def _primitive(self, op: str):
        """The model-specific ``_k_<op>`` body for one operation."""
        try:
            return getattr(self, "_k_" + op)
        except AttributeError:
            raise ModelError(
                f"port '{self.model_name}' has no primitive for '{op}' "
                f"(expected a _k_{op} method)"
            ) from None

    def dispatch(self, call: KernelCall):
        """Trace and run one operation from the kernel table."""
        op = OPS[call.op]
        self._launch(op.kernel)
        result = self._primitive(call.op)(*call.args)
        written = op.written(call.args)
        if written:
            self._mark_dirty(written)
        return result

    def dispatch_fused(
        self, calls: tuple[KernelCall, ...], spec: KernelSpec | None = None
    ) -> list:
        """Run a fused group as one traced launch.

        The member bodies execute sequentially in original order, so the
        arithmetic (and every reduction, still on ``deterministic_sum``)
        is bitwise-identical to dispatching them separately; only the
        launch/traversal count changes.  The executor passes the group's
        precomputed ``spec``; synthesising it here per dispatch made
        ``--fuse`` a net wall-time loss on fast ports.
        """
        if spec is None:
            spec = fused_spec(calls)
        self._launch(spec.name, spec=spec)
        results = []
        for call in calls:
            op = OPS[call.op]
            results.append(self._primitive(call.op)(*call.args))
            written = op.written(call.args)
            if written:
                self._mark_dirty(written)
        return results

    def dispatch_compiled(self, step, argv: tuple[tuple, ...]) -> tuple:
        """Run one codegen-lowered step (see :mod:`repro.models.codegen`).

        The generated function reads and writes the port's device arrays
        directly, so trace launches and residency dirtying are replayed
        here from the step's pre-recorded accounting — one launch per
        member call exactly as the interpreted dispatch would emit.
        """
        for kernel_name, spec in step.launches:
            self._launch(kernel_name, spec=spec)
        results = step.fn(self._codegen_ctx(), argv)
        for call, args in zip(step.calls, argv):
            written = call.spec.written(args)
            if written:
                self._mark_dirty(written)
        return results

    def _codegen_ctx(self):
        """The port's (cached) codegen evaluation context."""
        ctx = getattr(self, "_codegen_ctx_cache", None)
        if ctx is None:
            from repro.models.codegen import CodegenContext

            ctx = CodegenContext(self._device_array, self.grid)
            self._codegen_ctx_cache = ctx
        return ctx

    # ------------------------------------------------------------------ #
    # the TeaLeaf kernel set (shared shims over the _k_* primitives)
    # ------------------------------------------------------------------ #
    def set_field(self) -> None:
        """energy1 = energy0."""
        self.dispatch(KernelCall("set_field"))

    def tea_leaf_init(self, dt: float, coefficient: str) -> None:
        """u = u0 = energy1*density; build kx, ky with rx/ry folded in."""
        self.dispatch(KernelCall("tea_leaf_init", (dt, coefficient)))

    def tea_leaf_residual(self) -> None:
        """r = u0 - A u."""
        self.dispatch(KernelCall("tea_leaf_residual"))

    def cg_init(self) -> float:
        """w = A u; r = u0 - w; p = r; returns rro = r.r."""
        return self.dispatch(KernelCall("cg_init"))

    def cg_calc_w(self) -> float:
        """w = A p; returns pw = p.w."""
        return self.dispatch(KernelCall("cg_calc_w"))

    def cg_calc_ur(self, alpha: float) -> float:
        """u += alpha p; r -= alpha w; returns rrn = r.r."""
        return self.dispatch(KernelCall("cg_calc_ur", (alpha,)))

    def cg_calc_p(self, beta: float) -> None:
        """p = r + beta p."""
        self.dispatch(KernelCall("cg_calc_p", (beta,)))

    def cheby_init(self, theta: float) -> None:
        """r = u0 - A u; sd = r/theta; u += sd."""
        self.dispatch(KernelCall("cheby_init", (theta,)))

    def cheby_iterate(self, alpha: float, beta: float) -> None:
        """r -= A sd; sd = alpha sd + beta r; u += sd."""
        self.dispatch(KernelCall("cheby_iterate", (alpha, beta)))

    def ppcg_precon_init(self, theta: float) -> None:
        """w = r; sd = w/theta; z = sd (start the inner Chebyshev solve)."""
        self.dispatch(KernelCall("ppcg_precon_init", (theta,)))

    def ppcg_precon_inner(self, alpha: float, beta: float) -> None:
        """w -= A sd; sd = alpha sd + beta w; z += sd."""
        self.dispatch(KernelCall("ppcg_precon_inner", (alpha, beta)))

    def ppcg_calc_p(self, beta: float) -> None:
        """p = z + beta p (the preconditioned direction update)."""
        self.dispatch(KernelCall("ppcg_calc_p", (beta,)))

    def cg_precon_jacobi(self) -> None:
        """z = r / diag(A): apply the diagonal (jac_diag) preconditioner."""
        self.dispatch(KernelCall("cg_precon_jacobi"))

    def jacobi_iterate(self) -> float:
        """u_new from neighbours of old u; returns sum |u_new - u_old|.

        Every port realises the sweep the same way: stash the previous
        iterate in r (its only free array), then update u from it.
        """
        self.copy_field(F.U, F.R)
        return self.dispatch(KernelCall("jacobi_iterate"))

    def norm2_field(self, name: str) -> float:
        """Interior squared 2-norm of a field."""
        return self.dispatch(KernelCall("norm2_field", (name,)))

    def dot_fields(self, a: str, b: str) -> float:
        """Interior dot product of two fields."""
        return self.dispatch(KernelCall("dot_fields", (a, b)))

    def copy_field(self, src: str, dst: str) -> None:
        """dst = src over the whole allocation."""
        self.dispatch(KernelCall("copy_field", (src, dst)))

    def tea_leaf_finalise(self) -> None:
        """energy1 = u / density."""
        self.dispatch(KernelCall("tea_leaf_finalise"))

    def field_summary(self) -> tuple[float, float, float, float]:
        """(volume, mass, internal energy, temperature) interior totals."""
        return self.dispatch(KernelCall("field_summary"))

    # ------------------------------------------------------------------ #
    # halo update
    # ------------------------------------------------------------------ #
    def update_halo(self, names: Iterable[str], depth: int) -> None:
        """Reflective physical-boundary refresh of the named fields.

        The default implementation reflects on the port's device-resident
        arrays via :meth:`_device_array`.  Neighbour exchange for decomposed
        runs is layered on top by :mod:`repro.comm`.
        """
        for name in names:
            ops.reflective_halo_update(self._device_array(name), self.h, depth)
            self._launch("halo_update", cells=self._halo_cells(depth))
            self._mark_dirty((name,))

    # ------------------------------------------------------------------ #
    # async overlap (the deterministic simulated-async exchange API)
    # ------------------------------------------------------------------ #
    def halo_begin(self, names: Iterable[str], depth: int):
        """Post the exchange for ``names``; returns a wait token.

        The single-chunk default completes the reflective update eagerly
        — the deterministic simulated-async mode: the 'posted' exchange
        reads exactly the pre-sweep edge values the synchronous
        :meth:`update_halo` would, so overlapped results are bitwise
        identical and there is no wall-clock nondeterminism.  Decomposed
        ports override this pair to genuinely split post and delivery.
        """
        self.update_halo(names, depth)
        return None

    def halo_wait(self, token) -> None:
        """Complete a posted exchange (no-op for the eager default)."""

    def overlap_chunks(self) -> tuple[Port, ...]:
        """The per-chunk ports an overlapped sweep iterates over."""
        return (self,)

    def overlap_reduce(self, partials: list[float]) -> float:
        """Combine per-chunk reduction partials (allreduce when ranked)."""
        return partials[0]

    def halo_wire_traffic(
        self, names: Iterable[str], depth: int
    ) -> tuple[int, int]:
        """(bytes, messages) one exchange of ``names`` puts on the wire.

        Single-chunk ports exchange nothing — reflective boundaries are
        local — so exposed-communication accounting reports zero for
        them and the decomposed port supplies the real footprint.
        """
        return (0, 0)

    @abstractmethod
    def _device_array(self, name: str) -> np.ndarray:
        """The device-resident backing array for ``name`` (for halo logic)."""


class ProgrammingModel(ABC):
    """Factory + metadata for one programming model."""

    capabilities: Capabilities

    @property
    def name(self) -> str:
        return self.capabilities.name

    @abstractmethod
    def make_port(self, grid: Grid2D, trace: Trace | None = None) -> Port:
        """Create a fresh TeaLeaf port on ``grid``."""


_REGISTRY: dict[str, ProgrammingModel] = {}


def register_model(model: ProgrammingModel) -> ProgrammingModel:
    """Register a model instance under its capability name."""
    name = model.capabilities.name
    if name in _REGISTRY:
        raise ModelError(f"model '{name}' already registered")
    _REGISTRY[name] = model
    return model


def get_model(name: str) -> ProgrammingModel:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ModelError(
            f"unknown model '{name}'; available: {', '.join(sorted(_REGISTRY))}"
        ) from None


def available_models() -> list[str]:
    """Registered model names, stable order."""
    return sorted(_REGISTRY)


def make_port(model_name: str, grid: Grid2D, trace: Trace | None = None) -> Port:
    """Convenience: look up a model and create a port in one call."""
    return get_model(model_name).make_port(grid, trace)
