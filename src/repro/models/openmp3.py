"""The OpenMP 3.0 TeaLeaf ports (Fortran 90 and C++ dialects).

This is the paper's platform-specific baseline: a shared-memory,
host-resident implementation parallelised with ``parallel for`` over the
outer (row) loop of every kernel and ``reduction(+:...)`` clauses for the
dot products.  It runs natively on CPUs and on KNC (Table 1), and is "used
as a best case for performance on the CPU and KNC" (§3).

Two dialects are registered — ``openmp-f90`` and ``openmp-cpp`` — because
Figure 8 distinguishes them: identical TeaLeaf code compiled as C++ ran the
Chebyshev solver 15 % slower than the Fortran build with Intel 15.0.3
(§4.1).  The dialect changes only the performance-calibration key; the
numerics are identical, as they were in the paper.
"""

from __future__ import annotations

import numpy as np

from repro.core import fields as F
from repro.core import operators as ops
from repro.core.grid import Grid2D
from repro.models import loopbodies as lb
from repro.models.base import (
    Capabilities,
    DeviceKind,
    Port,
    ProgrammingModel,
    Support,
    register_model,
)
from repro.models.openmp.runtime import DEFAULT_NUM_THREADS, OpenMPRuntime
from repro.models.tracing import Trace
from repro.util.errors import ModelError


class OpenMP3Port(Port):
    """Host-resident TeaLeaf with fork-join row parallelism.

    The kernel set is expressed as ``_k_*`` primitives over the shared
    OpenMP-C loop bodies; dispatch, tracing and residency bookkeeping live
    in :class:`Port`.  Elementwise kernels may be fused: the fork-join
    model happily runs several loop bodies per parallel region.
    """

    supports_fusion = True

    def __init__(
        self,
        grid: Grid2D,
        trace: Trace | None = None,
        dialect: str = "f90",
        num_threads: int = DEFAULT_NUM_THREADS,
    ) -> None:
        super().__init__(grid, trace)
        self.model_name = f"openmp-{dialect}"
        self.omp = OpenMPRuntime(num_threads)
        self._host_fields: dict[str, np.ndarray] = {
            name: grid.allocate() for name in F.FIELD_ORDER
        }
        self._rx = 0.0
        self._ry = 0.0

    @property
    def fields(self):
        """The arrays kernels operate on.

        For this host-resident port these are simply the host allocations;
        the offload subclasses (OpenMP 4.0, OpenACC) override this property
        to resolve names against their device data environment, which is
        exactly how the paper's ports reused the OpenMP C loop bodies under
        different data-residency directives.
        """
        return self._host_fields

    # ------------------------------------------------------------------ #
    # data interface (host model: no transfers)
    # ------------------------------------------------------------------ #
    def set_state(self, density: np.ndarray, energy0: np.ndarray) -> None:
        if density.shape != self.grid.shape:
            raise ModelError(
                f"state shape {density.shape} != grid shape {self.grid.shape}"
            )
        self.fields[F.DENSITY][...] = density
        self.fields[F.ENERGY0][...] = energy0
        self._launch("generate_chunk")

    def read_field(self, name: str) -> np.ndarray:
        return self.fields[name].copy()

    def write_field(self, name: str, values: np.ndarray) -> None:
        self.fields[name][...] = values

    def _device_array(self, name: str) -> np.ndarray:
        return self.fields[name]

    # Plain host arrays: adopting an arena row is a dict rebind (kernels
    # resolve ``self.fields[name]`` per call, so rebinding is safe).
    supports_field_binding = True

    def bind_field(self, name: str, flat: np.ndarray) -> None:
        self._host_fields[name] = flat.reshape(self.grid.shape)
        self.invalidate_residency((name,))

    # ------------------------------------------------------------------ #
    # kernels
    # ------------------------------------------------------------------ #
    def _k_set_field(self) -> None:
        e0, e1 = self.fields[F.ENERGY0], self.fields[F.ENERGY1]
        h, nx = self.h, self.grid.nx
        self.omp.parallel_for(
            self.grid.ny,
            lambda r0, r1: e1.__setitem__(
                (slice(h + r0, h + r1), slice(h, h + nx)),
                e0[h + r0 : h + r1, h : h + nx],
            ),
        )

    def _k_tea_leaf_init(self, dt: float, coefficient: str) -> None:
        g = self.grid
        self._rx = dt / (g.dx * g.dx)
        self._ry = dt / (g.dy * g.dy)
        recip = coefficient == ops.RECIP_CONDUCTIVITY
        f = self.fields
        self.omp.parallel_for(
            g.ny,
            lambda r0, r1: lb.tea_leaf_init_slab(
                f[F.DENSITY], f[F.ENERGY1], f[F.U], f[F.U0], f[F.KX], f[F.KY],
                self._rx, self._ry, recip, self.h, g.nx, r0, r1,
            ),
        )
        lb.zero_boundary_coefficients(f[F.KX], f[F.KY], self.h, g.nx, g.ny)

    def _k_tea_leaf_residual(self) -> None:
        f = self.fields
        self.omp.parallel_for(
            self.grid.ny,
            lambda r0, r1: lb.residual_slab(
                f[F.R], f[F.U0], f[F.U], f[F.KX], f[F.KY],
                self.h, self.grid.nx, r0, r1,
            ),
        )

    def _k_cg_init(self) -> float:
        f = self.fields
        return self.omp.parallel_reduce(
            self.grid.ny,
            lambda r0, r1: lb.cg_init_slab(
                f[F.W], f[F.R], f[F.P], f[F.U], f[F.U0], f[F.KX], f[F.KY],
                self.h, self.grid.nx, r0, r1,
            ),
        )

    def _k_cg_calc_w(self) -> float:
        f = self.fields
        return self.omp.parallel_reduce(
            self.grid.ny,
            lambda r0, r1: lb.cg_calc_w_slab(
                f[F.W], f[F.P], f[F.KX], f[F.KY], self.h, self.grid.nx, r0, r1
            ),
        )

    def _k_cg_calc_ur(self, alpha: float) -> float:
        f = self.fields
        return self.omp.parallel_reduce(
            self.grid.ny,
            lambda r0, r1: lb.cg_calc_ur_slab(
                f[F.U], f[F.R], f[F.P], f[F.W], alpha, self.h, self.grid.nx, r0, r1
            ),
        )

    def _k_cg_calc_p(self, beta: float) -> None:
        f = self.fields
        self.omp.parallel_for(
            self.grid.ny,
            lambda r0, r1: lb.cg_calc_p_slab(
                f[F.P], f[F.R], beta, self.h, self.grid.nx, r0, r1
            ),
        )

    def _k_cheby_init(self, theta: float) -> None:
        f = self.fields
        self.omp.parallel_for(
            self.grid.ny,
            lambda r0, r1: lb.cheby_init_slab(
                f[F.R], f[F.SD], f[F.U], f[F.U0], f[F.W], f[F.KX], f[F.KY],
                theta, self.h, self.grid.nx, r0, r1,
            ),
        )
        self.omp.parallel_for(
            self.grid.ny,
            lambda r0, r1: lb.cheby_calc_u_slab(
                f[F.U], f[F.SD], self.h, self.grid.nx, r0, r1
            ),
        )

    def _k_cheby_iterate(self, alpha: float, beta: float) -> None:
        f = self.fields
        self.omp.parallel_for(
            self.grid.ny,
            lambda r0, r1: lb.cheby_iterate_r_slab(
                f[F.R], f[F.SD], f[F.W], f[F.KX], f[F.KY],
                self.h, self.grid.nx, r0, r1,
            ),
        )
        self.omp.parallel_for(
            self.grid.ny,
            lambda r0, r1: lb.cheby_iterate_sd_slab(
                f[F.SD], f[F.R], f[F.U], alpha, beta, self.h, self.grid.nx, r0, r1
            ),
        )

    def _k_ppcg_precon_init(self, theta: float) -> None:
        f = self.fields
        self.omp.parallel_for(
            self.grid.ny,
            lambda r0, r1: lb.ppcg_precon_init_slab(
                f[F.W], f[F.SD], f[F.Z], f[F.R], theta, self.h, self.grid.nx, r0, r1
            ),
        )

    def _k_ppcg_precon_inner(self, alpha: float, beta: float) -> None:
        # Sweep 1: w -= A sd (the inner residual update).
        scratch = self._scratch()
        self.omp.parallel_for(
            self.grid.ny,
            lambda r0, r1: self._ppcg_inner_r(scratch, r0, r1),
        )
        # Sweep 2: sd = alpha sd + beta w; z += sd.
        self.omp.parallel_for(
            self.grid.ny,
            lambda r0, r1: self._ppcg_inner_sd(alpha, beta, r0, r1),
        )

    def _scratch(self) -> np.ndarray:
        if not hasattr(self, "_scratch_arr"):
            self._scratch_arr = self.grid.allocate()
        return self._scratch_arr

    def _ppcg_inner_r(self, scratch: np.ndarray, r0: int, r1: int) -> None:
        f = self.fields
        lb.matvec_slab(scratch, f[F.SD], f[F.KX], f[F.KY], self.h, self.grid.nx, r0, r1)
        I = slice(self.h + r0, self.h + r1)
        J = slice(self.h, self.h + self.grid.nx)
        f[F.W][I, J] -= scratch[I, J]

    def _ppcg_inner_sd(self, alpha: float, beta: float, r0: int, r1: int) -> None:
        f = self.fields
        I = slice(self.h + r0, self.h + r1)
        J = slice(self.h, self.h + self.grid.nx)
        f[F.SD][I, J] = alpha * f[F.SD][I, J] + beta * f[F.W][I, J]
        f[F.Z][I, J] += f[F.SD][I, J]

    def _k_ppcg_calc_p(self, beta: float) -> None:
        f = self.fields
        self.omp.parallel_for(
            self.grid.ny,
            lambda r0, r1: lb.cg_calc_p_slab(
                f[F.P], f[F.Z], beta, self.h, self.grid.nx, r0, r1
            ),
        )

    def _k_cg_precon_jacobi(self) -> None:
        f = self.fields
        self.omp.parallel_for(
            self.grid.ny,
            lambda r0, r1: lb.cg_precon_slab(
                f[F.Z], f[F.R], f[F.KX], f[F.KY], self.h, self.grid.nx, r0, r1
            ),
        )

    def _k_jacobi_iterate(self) -> float:
        f = self.fields
        return self.omp.parallel_reduce(
            self.grid.ny,
            lambda r0, r1: lb.jacobi_iterate_slab(
                f[F.U], f[F.R], f[F.U0], f[F.KX], f[F.KY],
                self.h, self.grid.nx, r0, r1,
            ),
        )

    def _k_norm2_field(self, name: str) -> float:
        a = self.fields[name]
        h, nx = self.h, self.grid.nx
        return self.omp.parallel_reduce(
            self.grid.ny,
            lambda r0, r1: (
                a[h + r0 : h + r1, h : h + nx] * a[h + r0 : h + r1, h : h + nx]
            ).ravel(),
        )

    def _k_dot_fields(self, name_a: str, name_b: str) -> float:
        a, b = self.fields[name_a], self.fields[name_b]
        h, nx = self.h, self.grid.nx
        return self.omp.parallel_reduce(
            self.grid.ny,
            lambda r0, r1: (
                a[h + r0 : h + r1, h : h + nx] * b[h + r0 : h + r1, h : h + nx]
            ).ravel(),
        )

    def _k_copy_field(self, src: str, dst: str) -> None:
        s, d = self.fields[src], self.fields[dst]
        self.omp.parallel_for(
            s.shape[0],
            lambda r0, r1: d.__setitem__(slice(r0, r1), s[r0:r1]),
        )

    def _k_tea_leaf_finalise(self) -> None:
        f = self.fields
        self.omp.parallel_for(
            self.grid.ny,
            lambda r0, r1: lb.finalise_slab(
                f[F.ENERGY1], f[F.U], f[F.DENSITY], self.h, self.grid.nx, r0, r1
            ),
        )

    def _k_field_summary(self) -> tuple[float, float, float, float]:
        f = self.fields
        vol, mass, ie, temp = self.omp.parallel_reduce_multi(
            self.grid.ny,
            lambda r0, r1: lb.field_summary_slab(
                f[F.DENSITY], f[F.ENERGY1], f[F.U], self.grid.cell_volume,
                self.h, self.grid.nx, r0, r1,
            ),
            width=4,
        )
        return vol, mass, ie, temp


class OpenMP3Model(ProgrammingModel):
    """Factory for one OpenMP 3.0 dialect."""

    def __init__(self, dialect: str, display: str) -> None:
        self.dialect = dialect
        self.capabilities = Capabilities(
            name=f"openmp-{dialect}",
            display_name=display,
            directive_based=True,
            language="Fortran 90" if dialect == "f90" else "C++",
            support={
                DeviceKind.CPU: Support.YES,
                DeviceKind.GPU: Support.NO,
                DeviceKind.KNC: Support.NATIVE,
            },
            cross_platform=False,
            summary="Shared-memory directives; the device-tuned host baseline.",
        )

    def make_port(self, grid: Grid2D, trace: Trace | None = None) -> OpenMP3Port:
        return OpenMP3Port(grid, trace, dialect=self.dialect)


register_model(OpenMP3Model("f90", "OpenMP 3.0 (Fortran 90)"))
register_model(OpenMP3Model("cpp", "OpenMP 3.0 (C++)"))
