"""The OpenACC TeaLeaf port (§2.2, §3.2 of the paper).

Built from the OpenMP 4.0 codebase exactly as the paper's was: the same
loop bodies and the same data transitions, with ``acc data`` replacing
``target data`` and each kernel wrapped in an ``acc kernels present(...)
loop independent collapse(2)`` region.  The ``present`` clause is enforced
at every launch, so running a kernel outside the data region with
device-resident expectations fails loudly — which is how the PGI runtime
behaves.
"""

from __future__ import annotations

import numpy as np

from repro.core import fields as F
from repro.core.grid import Grid2D
from repro.models.base import (
    Capabilities,
    DeviceKind,
    ProgrammingModel,
    Support,
    register_model,
)
from repro.models.openacc.directives import AccDataRegion
from repro.models.openmp.directives import DeviceDataEnvironment
from repro.models.openmp3 import OpenMP3Port
from repro.models.openmp4 import _ALLOC_FIELDS, _DeviceFieldView
from repro.models.tracing import Trace
from repro.util.errors import ModelError


class OpenACCPort(OpenMP3Port):
    """OpenMP C loop bodies under OpenACC data/kernels directives."""

    #: Every kernel is its own acc kernels region (a sync fence); the data
    #: region is real, so no fusion and no barrier hoisting.
    supports_fusion = False
    has_data_region = True
    #: The acc data environment copies host arrays on map — external
    #: arena backing cannot alias through it (see OpenMP4Port).
    supports_field_binding = False

    def __init__(self, grid: Grid2D, trace: Trace | None = None) -> None:
        super().__init__(grid, trace, dialect="f90")
        self.model_name = "openacc"
        self.env = DeviceDataEnvironment(self.trace)
        self._data_region: AccDataRegion | None = None

    # ------------------------------------------------------------------ #
    @property
    def fields(self):
        if self._data_region is not None:
            return _DeviceFieldView(self.env)
        return self._host_fields

    def begin_solve(self) -> None:
        if self._data_region is not None:
            if self._residency_enabled:
                # Persistent region: still open from the previous step.
                return
            raise ModelError("acc data region is already open")
        hf = self._host_fields
        copyin = {F.DENSITY: hf[F.DENSITY]}
        if self._residency_enabled:
            # set_field runs inside the held-open region on later steps and
            # reads energy0, so the persistent region must map it.
            copyin[F.ENERGY0] = hf[F.ENERGY0]
        region = AccDataRegion(
            self.env,
            copyin=copyin,
            copy={F.ENERGY1: hf[F.ENERGY1], F.U: hf[F.U]},
            create={name: hf[name] for name in _ALLOC_FIELDS},
        )
        region.__enter__()
        self._data_region = region

    def end_solve(self) -> None:
        if self._data_region is None:
            raise ModelError("no open acc data region")
        if self._residency_enabled:
            # Keep data resident across steps; host reads use acc update.
            return
        self._data_region.__exit__(None, None, None)
        self._data_region = None

    def _launch(self, kernel_name: str, cells: int | None = None, spec=None):
        spec = super()._launch(kernel_name, cells, spec)
        if self._data_region is not None:
            self.trace.region(f"acc_kernels:{kernel_name}")
        return spec

    def read_field(self, name: str) -> np.ndarray:
        if self._data_region is not None and self.env.is_mapped(name):
            self.env.update_from(name)
        return self._host_fields[name].copy()

    def write_field(self, name: str, values: np.ndarray) -> None:
        self._host_fields[name][...] = values
        if self._data_region is not None and self.env.is_mapped(name):
            self.env.update_to(name)

    def _device_array(self, name: str) -> np.ndarray:
        if self._data_region is not None and self.env.is_mapped(name):
            return self.env.device(name)
        return self._host_fields[name]


class OpenACCModel(ProgrammingModel):
    capabilities = Capabilities(
        name="openacc",
        display_name="OpenACC",
        directive_based=True,
        language="C/Fortran",
        support={
            DeviceKind.CPU: Support.YES,
            DeviceKind.GPU: Support.YES,
            DeviceKind.KNC: Support.NO,
        },
        cross_platform=True,
        summary="Directive offload for NVIDIA GPUs (and x86 via PGI 15.10); "
        "the easiest GPU port to develop in the paper.",
    )

    def make_port(self, grid: Grid2D, trace: Trace | None = None) -> OpenACCPort:
        return OpenACCPort(grid, trace)


register_model(OpenACCModel())
