"""The RAJA TeaLeaf ports: indirection-list and SIMD proof-of-concept.

Two registered models, matching §3.4 / §4.1:

``raja``
    All main loops became lambda calls over IndexSets of per-row
    **ListSegments** whose indirection arrays pre-exclude the halo, so the
    loop bodies have "no explicit conditions or index calculations".  The
    indirection lists are precomputed once at port construction — the
    "earlier in the application" initialisation the paper flags as a
    design question for large codebases.  Indirect addressing precludes
    vectorisation, which the device calibration charges for (the ~40 %
    Chebyshev penalty of Figure 8).

``raja-simd``
    The proof-of-concept from §4.1: the same lambdas dispatched over
    stride-1 **RangeSegments** under a ``simd_exec`` policy (the OpenMP 4.0
    ``simd`` statement in the paper), recovering vectorisation for the
    Chebyshev solver.

The port is host-resident: the RAJA available to the paper was unreleased
and excluded GPU support (Table 1).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.core import fields as F
from repro.core.grid import Grid2D
from repro.models.base import (
    Capabilities,
    DeviceKind,
    Port,
    ProgrammingModel,
    Support,
    register_model,
)
from repro.models.raja.forall import (
    cuda_exec,
    forall,
    omp_parallel_for_exec,
    simd_exec,
)
from repro.models.raja.reducers import ReduceSum
from repro.models.raja.segments import IndexSet, ListSegment, RangeSegment
from repro.models.reduction import deterministic_multi_sum
from repro.models.stencil import flat_diag, flat_matvec
from repro.models.tracing import Trace
from repro.util.errors import ModelError


def multi_reduce_dispatch(
    indexset: IndexSet,
    body: Callable[[np.ndarray], Sequence[np.ndarray]],
    width: int,
) -> tuple[float, ...]:
    """Custom dispatch for bodies with multiple reduction variables.

    The paper's port had to write its own dispatch-function implementations
    "to handle situations where we had multiple reduction variables, and
    for multiple indexing" (§3.4) — this is that code.  The body returns
    one contribution array per reduction variable for each segment batch;
    per-variable contributions are buffered in segment order and finalised
    by the shared deterministic pairwise tree.
    """
    parts: list[list[np.ndarray]] = [[] for _ in range(width)]
    for seg in indexset.segments:
        idx = seg.indices()
        if not idx.size:
            continue
        contribs = body(idx)
        if len(contribs) != width:
            raise ModelError(
                f"multi-reduce body returned {len(contribs)} values, expected {width}"
            )
        for i, c in enumerate(contribs):
            parts[i].append(np.atleast_1d(np.asarray(c, dtype=np.float64)).ravel())
    return deterministic_multi_sum(
        [np.concatenate(p) if p else np.zeros(0) for p in parts]
    )


class RAJAPort(Port):
    """Lambda bodies over precomputed interior IndexSets."""

    model_name = "raja"
    #: forall launches carry no implicit fences; fusion is legal.
    supports_fusion = True
    #: Execution policy for the main loops.
    policy = omp_parallel_for_exec
    #: Whether to build vectorisable RangeSegments (the SIMD variant).
    use_range_segments = False

    def __init__(self, grid: Grid2D, trace: Trace | None = None) -> None:
        super().__init__(grid, trace)
        self.fields: dict[str, np.ndarray] = {
            name: grid.allocate() for name in F.FIELD_ORDER
        }
        self._pitch = grid.nx + 2 * grid.halo
        self._rx = 0.0
        self._ry = 0.0
        # Indirection-list precomputation: one IndexSet per distinct data
        # traversal.  TeaLeaf only needs three, but §3.4 notes diverse
        # traversals would bloat this decoupled initialisation code.
        self._interior = self._build_indexset(col0=0)
        self._x_faces = self._build_indexset(col0=1)  # skip the west wall face
        self._y_faces = self._build_indexset(col0=0, row0=1)  # skip south wall

    def _build_indexset(self, col0: int = 0, row0: int = 0) -> IndexSet:
        """Per-interior-row segments over flat (C-order) indices."""
        h, nx, ny = self.h, self.grid.nx, self.grid.ny
        iset = IndexSet()
        for k in range(row0, ny):
            base = (h + k) * self._pitch + h + col0
            if self.use_range_segments:
                iset.push_back(RangeSegment(base, base + nx - col0))
            else:
                iset.push_back(ListSegment(np.arange(base, base + nx - col0)))
        return iset

    # ------------------------------------------------------------------ #
    def _flat(self, name: str) -> np.ndarray:
        return self.fields[name].ravel()

    def set_state(self, density: np.ndarray, energy0: np.ndarray) -> None:
        if density.shape != self.grid.shape:
            raise ModelError(
                f"state shape {density.shape} != grid shape {self.grid.shape}"
            )
        self.fields[F.DENSITY][...] = density
        self.fields[F.ENERGY0][...] = energy0
        self._launch("generate_chunk")

    def read_field(self, name: str) -> np.ndarray:
        return self.fields[name].copy()

    def write_field(self, name: str, values: np.ndarray) -> None:
        self.fields[name][...] = values

    def _device_array(self, name: str) -> np.ndarray:
        return self.fields[name]

    # Kernels resolve fields (and their ``_flat`` ravel views, which stay
    # zero-copy on the contiguous arena rows) per call, so a dict rebind
    # is all adoption takes.
    supports_field_binding = True

    def bind_field(self, name: str, flat: np.ndarray) -> None:
        self.fields[name] = flat.reshape(self.grid.shape)
        self.invalidate_residency((name,))

    # ------------------------------------------------------------------ #
    def _matvec(self, i: np.ndarray, v: np.ndarray) -> np.ndarray:
        kx, ky = self._flat(F.KX), self._flat(F.KY)
        return flat_matvec(i, v, kx, ky, 1, self._pitch)

    def _k_set_field(self) -> None:
        e0, e1 = self._flat(F.ENERGY0), self._flat(F.ENERGY1)
        forall(self.policy, self._interior, lambda i: e1.__setitem__(i, e0[i]))

    def _k_tea_leaf_init(self, dt: float, coefficient: str) -> None:
        g = self.grid
        self._rx = dt / (g.dx * g.dx)
        self._ry = dt / (g.dy * g.dy)
        recip = coefficient == "recip_conductivity"
        density = self._flat(F.DENSITY)
        energy = self._flat(F.ENERGY1)
        u, u0 = self._flat(F.U), self._flat(F.U0)
        kx, ky = self._flat(F.KX), self._flat(F.KY)
        NX = self._pitch
        rx, ry = self._rx, self._ry

        def w_of(vals: np.ndarray) -> np.ndarray:
            return 1.0 / vals if recip else vals


        def init_u(i: np.ndarray) -> None:
            u[i] = energy[i] * density[i]
            u0[i] = u[i]

        forall(self.policy, self._interior, init_u)

        # Wall faces are simply absent from the face index sets, so the
        # zero-flux boundary needs no conditionals -- but the coefficients
        # must be cleared in case a previous solve wrote them.
        kx[self._interior.all_indices()] = 0.0
        ky[self._interior.all_indices()] = 0.0

        def init_kx(i: np.ndarray) -> None:
            wc, wx = w_of(density[i]), w_of(density[i - 1])
            kx[i] = rx * (wx + wc) / (2.0 * wx * wc)

        forall(self.policy, self._x_faces, init_kx)

        def init_ky(i: np.ndarray) -> None:
            wc, wy = w_of(density[i]), w_of(density[i - NX])
            ky[i] = ry * (wy + wc) / (2.0 * wy * wc)

        forall(self.policy, self._y_faces, init_ky)

    def _k_tea_leaf_residual(self) -> None:
        r, u0 = self._flat(F.R), self._flat(F.U0)
        u = self._flat(F.U)
        forall(
            self.policy,
            self._interior,
            lambda i: r.__setitem__(i, u0[i] - self._matvec(i, u)),
        )

    def _k_cg_init(self) -> float:
        w, r, p = self._flat(F.W), self._flat(F.R), self._flat(F.P)
        u, u0 = self._flat(F.U), self._flat(F.U0)
        rro = ReduceSum(self.policy)

        def body(i: np.ndarray) -> None:
            nonlocal rro
            w[i] = self._matvec(i, u)
            r[i] = u0[i] - w[i]
            p[i] = r[i]
            rro += r[i] * r[i]

        forall(self.policy, self._interior, body)
        return rro.get()

    def _k_cg_calc_w(self) -> float:
        w, p = self._flat(F.W), self._flat(F.P)
        pw = ReduceSum(self.policy)

        def body(i: np.ndarray) -> None:
            nonlocal pw
            w[i] = self._matvec(i, p)
            pw += p[i] * w[i]

        forall(self.policy, self._interior, body)
        return pw.get()

    def _k_cg_calc_ur(self, alpha: float) -> float:
        u, r = self._flat(F.U), self._flat(F.R)
        p, w = self._flat(F.P), self._flat(F.W)
        rrn = ReduceSum(self.policy)

        def body(i: np.ndarray) -> None:
            nonlocal rrn
            u[i] += alpha * p[i]
            r[i] -= alpha * w[i]
            rrn += r[i] * r[i]

        forall(self.policy, self._interior, body)
        return rrn.get()

    def _k_cg_calc_p(self, beta: float) -> None:
        p, r = self._flat(F.P), self._flat(F.R)
        forall(self.policy, self._interior, lambda i: p.__setitem__(i, r[i] + beta * p[i]))

    def _k_ppcg_calc_p(self, beta: float) -> None:
        p, z = self._flat(F.P), self._flat(F.Z)
        forall(self.policy, self._interior, lambda i: p.__setitem__(i, z[i] + beta * p[i]))

    def _k_cheby_init(self, theta: float) -> None:
        r, sd = self._flat(F.R), self._flat(F.SD)
        u, u0 = self._flat(F.U), self._flat(F.U0)

        def sweep_r(i: np.ndarray) -> None:
            r[i] = u0[i] - self._matvec(i, u)
            sd[i] = r[i] / theta

        forall(self.policy, self._interior, sweep_r)
        forall(self.policy, self._interior, lambda i: u.__setitem__(i, u[i] + sd[i]))

    def _k_cheby_iterate(self, alpha: float, beta: float) -> None:
        self._cheby_sweeps(F.R, F.U, alpha, beta)

    def _k_ppcg_precon_inner(self, alpha: float, beta: float) -> None:
        self._cheby_sweeps(F.W, F.Z, alpha, beta)

    def _cheby_sweeps(
        self, resid: str, accum: str, alpha: float, beta: float
    ) -> None:
        res, sd, acc = self._flat(resid), self._flat(F.SD), self._flat(accum)
        forall(
            self.policy,
            self._interior,
            lambda i: res.__setitem__(i, res[i] - self._matvec(i, sd)),
        )

        def sweep_sd(i: np.ndarray) -> None:
            sd[i] = alpha * sd[i] + beta * res[i]
            acc[i] += sd[i]

        forall(self.policy, self._interior, sweep_sd)

    def _k_ppcg_precon_init(self, theta: float) -> None:
        w, sd = self._flat(F.W), self._flat(F.SD)
        z, r = self._flat(F.Z), self._flat(F.R)

        def body(i: np.ndarray) -> None:
            w[i] = r[i]
            sd[i] = w[i] / theta
            z[i] = sd[i]

        forall(self.policy, self._interior, body)

    def _k_cg_precon_jacobi(self) -> None:
        z, r = self._flat(F.Z), self._flat(F.R)
        kx, ky = self._flat(F.KX), self._flat(F.KY)
        NX = self._pitch

        def body(i: np.ndarray) -> None:
            z[i] = r[i] / flat_diag(i, kx, ky, 1, NX)

        forall(self.policy, self._interior, body)

    def _k_jacobi_iterate(self) -> float:
        u, un, u0 = self._flat(F.U), self._flat(F.R), self._flat(F.U0)
        kx, ky = self._flat(F.KX), self._flat(F.KY)
        NX = self._pitch
        err = ReduceSum(self.policy)

        def body(i: np.ndarray) -> None:
            nonlocal err
            diag = flat_diag(i, kx, ky, 1, NX)
            u[i] = (
                u0[i]
                + kx[i + 1] * un[i + 1]
                + kx[i] * un[i - 1]
                + ky[i + NX] * un[i + NX]
                + ky[i] * un[i - NX]
            ) / diag
            err += np.abs(u[i] - un[i])

        forall(self.policy, self._interior, body)
        return err.get()

    def _k_norm2_field(self, name: str) -> float:
        a = self._flat(name)
        acc = ReduceSum(self.policy)

        def body(i: np.ndarray) -> None:
            nonlocal acc
            acc += a[i] * a[i]

        forall(self.policy, self._interior, body)
        return acc.get()

    def _k_dot_fields(self, name_a: str, name_b: str) -> float:
        a, b = self._flat(name_a), self._flat(name_b)
        acc = ReduceSum(self.policy)

        def body(i: np.ndarray) -> None:
            nonlocal acc
            acc += a[i] * b[i]

        forall(self.policy, self._interior, body)
        return acc.get()

    def _k_copy_field(self, src: str, dst: str) -> None:
        self.fields[dst][...] = self.fields[src]

    def _k_tea_leaf_finalise(self) -> None:
        energy, u = self._flat(F.ENERGY1), self._flat(F.U)
        density = self._flat(F.DENSITY)
        forall(
            self.policy,
            self._interior,
            lambda i: energy.__setitem__(i, u[i] / density[i]),
        )

    def _k_field_summary(self) -> tuple[float, float, float, float]:
        density, energy = self._flat(F.DENSITY), self._flat(F.ENERGY1)
        u = self._flat(F.U)
        vol = self.grid.cell_volume

        def body(i: np.ndarray):
            d = density[i]
            return (
                np.full(i.size, vol),
                vol * d,
                vol * d * energy[i],
                vol * u[i],
            )

        return multi_reduce_dispatch(self._interior, body, width=4)


class RAJASIMDPort(RAJAPort):
    """The §4.1 SIMD proof of concept: RangeSegments + simd_exec."""

    model_name = "raja-simd"
    policy = simd_exec
    use_range_segments = True


class RAJAGPUPort(RAJAPort):
    """Extension: the CUDA-backed RAJA the paper was waiting for (§2.3/§3).

    Same lambdas, dispatched through the ``cuda_exec`` policy so every
    forall becomes a guarded CUDA launch.  Data management is left to the
    application (this port keeps unified host-side arrays — the
    simplification a first lambda-offload port would make with managed
    memory); a production port would add explicit device residency.
    """

    model_name = "raja-gpu"
    policy = cuda_exec
    use_range_segments = True  # coalesced contiguous segments on the GPU


_RAJA_SUPPORT = {
    DeviceKind.CPU: Support.YES,
    DeviceKind.GPU: Support.NO,  # unreleased RAJA excluded GPU support (§3)
    DeviceKind.KNC: Support.NATIVE,
}


class RAJAModel(ProgrammingModel):
    capabilities = Capabilities(
        name="raja",
        display_name="RAJA",
        directive_based=False,
        language="C++11",
        support=_RAJA_SUPPORT,
        cross_platform=True,
        summary="LLNL portability layer: lambdas over IndexSets of "
        "indirection-list segments.",
    )

    def make_port(self, grid: Grid2D, trace: Trace | None = None) -> RAJAPort:
        return RAJAPort(grid, trace)


class RAJASIMDModel(ProgrammingModel):
    capabilities = Capabilities(
        name="raja-simd",
        display_name="RAJA (SIMD proof of concept)",
        directive_based=False,
        language="C++11",
        support=_RAJA_SUPPORT,
        cross_platform=True,
        summary="RangeSegment + forced-vectorisation variant recovering the "
        "Chebyshev penalty (§4.1).",
    )

    def make_port(self, grid: Grid2D, trace: Trace | None = None) -> RAJASIMDPort:
        return RAJASIMDPort(grid, trace)


class RAJAGPUModel(ProgrammingModel):
    capabilities = Capabilities(
        name="raja-gpu",
        display_name="RAJA (CUDA backend, extension)",
        directive_based=False,
        language="C++11",
        support={
            DeviceKind.CPU: Support.NO,
            DeviceKind.GPU: Support.YES,
            DeviceKind.KNC: Support.NO,
        },
        cross_platform=True,
        summary="Extension: the lambda-over-CUDA dispatch the RAJA team was "
        "writing at the time of the paper (§2.3); not part of the "
        "evaluated set (Table 1 lists RAJA GPU support as absent).",
    )

    def make_port(self, grid: Grid2D, trace: Trace | None = None) -> RAJAGPUPort:
        return RAJAGPUPort(grid, trace)


register_model(RAJAModel())
register_model(RAJASIMDModel())
register_model(RAJAGPUModel())
