"""CUDA emulation (§2.6 of the paper).

Emulates the CUDA platform abstractions the TeaLeaf port uses: the device
runtime (malloc / memcpy / free over a distinct device memory space), the
``<<<grid, block>>>`` launch configuration with per-thread index math and
overspill guards, and the shared-memory block-tree reduction that "it was
necessary to create ... including reduction code inside all of the
individual reduction-based kernels" (§3.5).

As with the other accelerator emulations, kernels receive their thread
coordinates as whole batches (SIMT execution): ``blockIdx.x``/
``threadIdx.x`` are arrays spanning the launch.
"""

from repro.models.cuda.runtime import CudaRuntime, DeviceAllocation, MemcpyKind
from repro.models.cuda.launch import Dim3, ThreadContext, launch, blocks_for
from repro.models.cuda.reduction import block_reduce_sum, next_pow2

__all__ = [
    "CudaRuntime",
    "DeviceAllocation",
    "MemcpyKind",
    "Dim3",
    "ThreadContext",
    "launch",
    "blocks_for",
    "block_reduce_sum",
    "next_pow2",
]
