"""The shared-memory block reduction tree.

TeaLeaf's CUDA port had to write "a custom GPU-specific reduction,
including reduction code inside all of the individual reduction-based
kernels" (§3.5).  This module is that code: every reduction kernel
computes one value per thread and then combines within each block by the
classic power-of-two stride-halving tree (the shared-memory ``__syncthreads``
pattern), leaving one partial per block for the host to finish.
"""

from __future__ import annotations

import numpy as np

from repro.util.errors import ModelError


def next_pow2(n: int) -> int:
    """Smallest power of two >= n (block sizes must be powers of two)."""
    if n < 1:
        raise ModelError(f"next_pow2 needs a positive argument, got {n}")
    p = 1
    while p < n:
        p <<= 1
    return p


def block_reduce_sum(values: np.ndarray, block_size: int) -> np.ndarray:
    """Per-block sums via the stride-halving shared-memory tree.

    ``values`` holds one contribution per thread of the launch;
    ``block_size`` must be a power of two (the classic kernel's
    requirement — TeaLeaf pads its launches accordingly).  A non-whole
    trailing block is zero-padded, exactly what the real kernel's
    overspill guard produces: threads past ``n`` contribute the reducer
    identity to the shared-memory tree.  The padding keeps every block's
    tree the same fixed shape, so the partials match
    :func:`repro.models.reduction.chunk_partials` bit for bit when
    ``block_size`` equals the canonical chunk width.

    Returns one partial per block, summed in tree order (which is *not*
    left-to-right order: tests assert it still matches np.sum to fp
    tolerance, as on real hardware).
    """
    if block_size < 1 or block_size & (block_size - 1):
        raise ModelError(f"block_size must be a power of two, got {block_size}")
    if values.ndim != 1:
        raise ModelError(f"values must be 1-D, got {values.ndim}-D")
    if values.size == 0:
        return np.zeros(0)
    tail = values.size % block_size
    if tail:
        values = np.concatenate([values, np.zeros(block_size - tail)])
    shared = values.reshape(-1, block_size).copy()
    stride = block_size // 2
    while stride >= 1:
        # __syncthreads(); if (tid < stride) sdata[tid] += sdata[tid+stride];
        shared[:, :stride] += shared[:, stride : 2 * stride]
        stride //= 2
    return shared[:, 0].copy()
