"""CUDA kernel launches: <<<grid, block>>> configuration and thread indexing.

A launched kernel receives a :class:`ThreadContext` exposing
``blockIdx_x``/``threadIdx_x`` as arrays covering every thread of the
launch (SIMT batch execution) plus the scalar ``blockDim_x``/``gridDim_x``.
Kernels compute their global index exactly as the C they model::

    idx = ctx.blockIdx_x * ctx.blockDim_x + ctx.threadIdx_x
    # guard iteration overspill (§3.5)
    valid = idx < n
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.util.errors import ModelError


@dataclass(frozen=True)
class Dim3:
    """Launch dimensions; TeaLeaf uses 1-D grids of 1-D blocks (§3.5)."""

    x: int
    y: int = 1
    z: int = 1

    def __post_init__(self) -> None:
        if self.x < 1 or self.y < 1 or self.z < 1:
            raise ModelError(f"invalid Dim3({self.x}, {self.y}, {self.z})")

    @property
    def total(self) -> int:
        return self.x * self.y * self.z


@dataclass(frozen=True)
class ThreadContext:
    """Per-launch thread coordinates (batched across all threads)."""

    blockIdx_x: np.ndarray
    threadIdx_x: np.ndarray
    blockDim_x: int
    gridDim_x: int

    @property
    def global_idx(self) -> np.ndarray:
        return self.blockIdx_x * self.blockDim_x + self.threadIdx_x


def blocks_for(n: int, block_size: int) -> int:
    """Grid size covering ``n`` items (the ubiquitous ceil-div)."""
    if n < 0 or block_size < 1:
        raise ModelError(f"blocks_for({n}, {block_size})")
    return max(1, (n + block_size - 1) // block_size)


def launch(
    kernel: Callable,
    grid: Dim3,
    block: Dim3,
    *args,
    scalar: bool = False,
):
    """Execute ``kernel<<<grid, block>>>(*args)``.

    ``scalar=True`` dispatches one thread at a time with singleton
    coordinate arrays (the validation mode).  Returns whatever the kernel
    returns (None for plain kernels).
    """
    if grid.y != 1 or grid.z != 1 or block.y != 1 or block.z != 1:
        raise ModelError("the TeaLeaf port launches 1-D grids of 1-D blocks")
    total = grid.x * block.x
    if scalar:
        result = None
        for t in range(total):
            ctx = ThreadContext(
                blockIdx_x=np.array([t // block.x], dtype=np.int64),
                threadIdx_x=np.array([t % block.x], dtype=np.int64),
                blockDim_x=block.x,
                gridDim_x=grid.x,
            )
            result = kernel(ctx, *args)
        return result
    tid = np.arange(total, dtype=np.int64)
    ctx = ThreadContext(
        blockIdx_x=tid // block.x,
        threadIdx_x=tid % block.x,
        blockDim_x=block.x,
        gridDim_x=grid.x,
    )
    return kernel(ctx, *args)
