"""CUDA device runtime: memory management and copies.

Device allocations are separate from host arrays and can only be filled or
read through ``memcpy``, whose transfers are traced (PCIe in the
performance model).  Use-after-free raises, as CUDA's debug tooling would.
"""

from __future__ import annotations

from enum import Enum

import numpy as np

from repro.models.tracing import Trace, TransferDirection
from repro.util.errors import ModelError


class MemcpyKind(Enum):
    """cudaMemcpyKind."""

    HOST_TO_DEVICE = "cudaMemcpyHostToDevice"
    DEVICE_TO_HOST = "cudaMemcpyDeviceToHost"
    DEVICE_TO_DEVICE = "cudaMemcpyDeviceToDevice"


class DeviceAllocation:
    """One cudaMalloc'd region, in float64 words."""

    def __init__(self, words: int, label: str = "") -> None:
        if words <= 0:
            raise ModelError(f"allocation must be positive, got {words} words")
        self._data = np.zeros(words, dtype=np.float64)
        self.label = label
        self.freed = False

    @classmethod
    def adopt(cls, buffer: np.ndarray, label: str = "") -> "DeviceAllocation":
        """Wrap externally-owned device words (an arena row) as an allocation.

        The bytes belong to the arena — ``free`` only retires the handle.
        """
        alloc = cls.__new__(cls)
        alloc._data = buffer
        alloc.label = label
        alloc.freed = False
        return alloc

    @property
    def data(self) -> np.ndarray:
        if self.freed:
            raise ModelError(f"use of freed device allocation '{self.label}'")
        return self._data

    @property
    def words(self) -> int:
        return self._data.size

    @property
    def nbytes(self) -> int:
        return self._data.nbytes


class CudaRuntime:
    """The host-side CUDA runtime API surface TeaLeaf needs."""

    def __init__(self, trace: Trace | None = None) -> None:
        self.trace = trace if trace is not None else Trace()
        self._allocations: list[DeviceAllocation] = []

    def malloc(self, words: int, label: str = "") -> DeviceAllocation:
        """cudaMalloc (sized in float64 words)."""
        alloc = DeviceAllocation(words, label)
        self._allocations.append(alloc)
        return alloc

    def adopt(self, buffer: np.ndarray, label: str = "") -> DeviceAllocation:
        """Register externally-backed device memory (arena-bound fields)."""
        alloc = DeviceAllocation.adopt(buffer, label)
        self._allocations.append(alloc)
        return alloc

    def free(self, alloc: DeviceAllocation) -> None:
        """cudaFree."""
        if alloc.freed:
            raise ModelError(f"double free of device allocation '{alloc.label}'")
        alloc.freed = True

    def memcpy(
        self,
        dst: DeviceAllocation | np.ndarray,
        src: DeviceAllocation | np.ndarray,
        kind: MemcpyKind,
    ) -> None:
        """cudaMemcpy with explicit direction, traced for H2D/D2H."""
        if kind is MemcpyKind.HOST_TO_DEVICE:
            if not isinstance(dst, DeviceAllocation) or isinstance(src, DeviceAllocation):
                raise ModelError("H2D memcpy needs host src and device dst")
            flat = np.asarray(src, dtype=np.float64).ravel()
            if flat.size != dst.words:
                raise ModelError(
                    f"memcpy size mismatch: {flat.size} -> {dst.words} words"
                )
            dst.data[...] = flat
            self.trace.transfer(
                f"cudaMemcpy(H2D:{dst.label})", flat.nbytes, TransferDirection.H2D
            )
        elif kind is MemcpyKind.DEVICE_TO_HOST:
            if not isinstance(src, DeviceAllocation) or isinstance(dst, DeviceAllocation):
                raise ModelError("D2H memcpy needs device src and host dst")
            flat = dst.reshape(-1)
            if flat.size != src.words:
                raise ModelError(
                    f"memcpy size mismatch: {src.words} -> {flat.size} words"
                )
            flat[...] = src.data
            self.trace.transfer(
                f"cudaMemcpy(D2H:{src.label})", src.nbytes, TransferDirection.D2H
            )
        elif kind is MemcpyKind.DEVICE_TO_DEVICE:
            if not (
                isinstance(src, DeviceAllocation) and isinstance(dst, DeviceAllocation)
            ):
                raise ModelError("D2D memcpy needs device src and dst")
            if src.words != dst.words:
                raise ModelError(
                    f"memcpy size mismatch: {src.words} -> {dst.words} words"
                )
            dst.data[...] = src.data
        else:
            raise ModelError(f"unknown memcpy kind {kind!r}")

    @property
    def live_allocations(self) -> int:
        return sum(1 for a in self._allocations if not a.freed)
