"""The Kokkos TeaLeaf ports: flat functors and hierarchical parallelism.

Two registered models, matching the paper:

``kokkos``
    Every data-affecting function is a functor over a *flattened* iteration
    space; because Kokkos "flattens the iteration space and provides a
    single index parameter, it was necessary to reform each cell's spatial
    location" and the original port "ignored the halo cells using a
    conditional statement within the functor body" (§3.3).  That loop-body
    conditional is exactly what this port does — and what the KNC compiled
    badly, motivating the HP variant.

``kokkos-hp``
    The Sandia-proposed hierarchical-parallelism rewrite (Figure 7):
    a ``TeamPolicy`` league over interior rows with a nested
    ``TeamThreadRange`` over columns, re-encoding the halo exclusion into
    the iteration space so no conditional is needed; reductions gain the
    "critically add the results from each team" step.

Fields are device-space :class:`~repro.models.kokkos.core.View` objects;
all host interaction goes through mirror views and traced ``deep_copy``
calls, "necessarily exposing some memory management complexity" (§3.3).
"""

from __future__ import annotations

import numpy as np

from repro.core import fields as F
from repro.core.grid import Grid2D
from repro.models.base import (
    Capabilities,
    DeviceKind,
    Port,
    ProgrammingModel,
    Support,
    register_model,
)
from repro.models.kokkos.core import (
    Layout,
    MemorySpace,
    View,
    create_mirror_view,
    deep_copy,
)
from repro.models.kokkos.parallel import (
    MultiSum,
    RangePolicy,
    Sum,
    TeamMember,
    TeamPolicy,
    parallel_for,
    parallel_reduce,
)
from repro.models.stencil import flat_diag, flat_matvec, row_diag, row_matvec
from repro.models.tracing import Trace
from repro.util.errors import ModelError


class _Geometry:
    """Layout-polymorphic flat-index arithmetic shared by all functors.

    This is the Kokkos selling point the paper highlights (§2.4): the same
    functor source works for LayoutRight (row-major, CPU-friendly) and
    LayoutLeft (column-major, the CUDA coalescing default) because
    neighbour offsets are derived from the layout's strides rather than
    hard-coded.  ``east`` is the +x neighbour offset and ``north`` the +y
    neighbour offset in the flattened (layout-ordered) index space.
    """

    def __init__(self, grid: Grid2D, layout: Layout = Layout.RIGHT) -> None:
        self.h = grid.halo
        self.nx = grid.nx
        self.ny = grid.ny
        self.NX = grid.nx + 2 * grid.halo  # padded row pitch
        self.NY = grid.ny + 2 * grid.halo
        self.layout = layout
        if layout is Layout.RIGHT:
            self.east, self.north = 1, self.NX
        else:  # LayoutLeft: k strides fastest
            self.east, self.north = self.NY, 1

    def decode(self, idx: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Flat (layout-ordered) index -> (row k, column j)."""
        if self.layout is Layout.RIGHT:
            return idx // self.NX, idx % self.NX
        return idx % self.NY, idx // self.NY

    def interior_mask(self, idx: np.ndarray) -> np.ndarray:
        """The loop-body halo-exclusion conditional of the flat port."""
        k, j = self.decode(idx)
        h = self.h
        return (k >= h) & (k < h + self.ny) & (j >= h) & (j < h + self.nx)

    def interior_select(self) -> np.ndarray:
        """Flat indices of the interior cells in canonical row-major order.

        Reduction functors return full-launch contribution arrays with
        zeros at halo positions; gathering through this index list hands
        the deterministic finalize the interior contributions in the same
        order as every other port, whatever the layout.
        """
        h = self.h
        k, j = np.meshgrid(
            np.arange(h, h + self.ny), np.arange(h, h + self.nx), indexing="ij"
        )
        if self.layout is Layout.RIGHT:
            return (k * self.NX + j).ravel()
        return (j * self.NY + k).ravel()


# --------------------------------------------------------------------- #
# flat functors (conditional halo exclusion)
# --------------------------------------------------------------------- #
class _Functor:
    """Base: captures the Views it needs as 'local variables' (§3.3)."""

    def __init__(self, geo: _Geometry) -> None:
        self.geo = geo


class TeaLeafInitFunctor(_Functor):
    """u = u0 = energy*density; harmonic face coefficients with rx/ry."""

    def __init__(self, geo, density, energy, u, u0, kx, ky, rx, ry, recip) -> None:
        super().__init__(geo)
        self.density = density.flat
        self.energy = energy.flat
        self.u = u.flat
        self.u0 = u0.flat
        self.kx = kx.flat
        self.ky = ky.flat
        self.rx = rx
        self.ry = ry
        self.recip = recip

    def _w(self, values: np.ndarray) -> np.ndarray:
        return 1.0 / values if self.recip else values

    def __call__(self, idx: np.ndarray) -> None:
        geo = self.geo
        inside = geo.interior_mask(idx)
        i = idx[inside]
        self.u[i] = self.energy[i] * self.density[i]
        self.u0[i] = self.u[i]

        k, j = geo.decode(idx)
        h = geo.h
        # Interior x-faces exclude the west wall (j == h): zero-flux boundary.
        fx = idx[inside & (j > h)]
        wc = self._w(self.density[fx])
        wx = self._w(self.density[fx - geo.east])
        self.kx[fx] = self.rx * (wx + wc) / (2.0 * wx * wc)
        fy = idx[inside & (k > h)]
        wc = self._w(self.density[fy])
        wy = self._w(self.density[fy - geo.north])
        self.ky[fy] = self.ry * (wy + wc) / (2.0 * wy * wc)


class _MatVecMixin:
    """A v at flat interior indices i, with layout-derived offsets."""

    @staticmethod
    def matvec(i: np.ndarray, v, kx, ky, e: int, n: int) -> np.ndarray:
        return flat_matvec(i, v, kx, ky, e, n)


class CGInitFunctor(_Functor, _MatVecMixin):
    """w = A u; r = u0 - w; p = r; contributes rro = r.r."""

    def __init__(self, geo, u, u0, w, r, p, kx, ky) -> None:
        super().__init__(geo)
        self.u, self.u0 = u.flat, u0.flat
        self.w, self.r, self.p = w.flat, r.flat, p.flat
        self.kx, self.ky = kx.flat, ky.flat

    def __call__(self, idx: np.ndarray) -> np.ndarray:
        inside = self.geo.interior_mask(idx)
        i = idx[inside]
        self.w[i] = self.matvec(i, self.u, self.kx, self.ky, self.geo.east, self.geo.north)
        self.r[i] = self.u0[i] - self.w[i]
        self.p[i] = self.r[i]
        contrib = np.zeros(idx.size)
        contrib[inside] = self.r[i] * self.r[i]
        return contrib


class CGCalcWFunctor(_Functor, _MatVecMixin):
    """w = A p; contributes pw = p.w."""

    def __init__(self, geo, p, w, kx, ky) -> None:
        super().__init__(geo)
        self.p, self.w = p.flat, w.flat
        self.kx, self.ky = kx.flat, ky.flat

    def __call__(self, idx: np.ndarray) -> np.ndarray:
        inside = self.geo.interior_mask(idx)
        i = idx[inside]
        self.w[i] = self.matvec(i, self.p, self.kx, self.ky, self.geo.east, self.geo.north)
        contrib = np.zeros(idx.size)
        contrib[inside] = self.p[i] * self.w[i]
        return contrib


class CGCalcURFunctor(_Functor):
    """u += alpha p; r -= alpha w; contributes rrn."""

    def __init__(self, geo, u, r, p, w, alpha) -> None:
        super().__init__(geo)
        self.u, self.r, self.p, self.w = u.flat, r.flat, p.flat, w.flat
        self.alpha = alpha

    def __call__(self, idx: np.ndarray) -> np.ndarray:
        inside = self.geo.interior_mask(idx)
        i = idx[inside]
        self.u[i] += self.alpha * self.p[i]
        self.r[i] -= self.alpha * self.w[i]
        contrib = np.zeros(idx.size)
        contrib[inside] = self.r[i] * self.r[i]
        return contrib


class AxpyFunctor(_Functor):
    """dst = src + scale * dst (cg_calc_p / ppcg_calc_p)."""

    def __init__(self, geo, dst, src, scale) -> None:
        super().__init__(geo)
        self.dst, self.src = dst.flat, src.flat
        self.scale = scale

    def __call__(self, idx: np.ndarray) -> None:
        i = idx[self.geo.interior_mask(idx)]
        self.dst[i] = self.src[i] + self.scale * self.dst[i]


class ChebyInitFunctor(_Functor, _MatVecMixin):
    """r = u0 - A u; sd = r/theta; u += sd."""

    def __init__(self, geo, u, u0, r, sd, kx, ky, theta) -> None:
        super().__init__(geo)
        self.u, self.u0, self.r, self.sd = u.flat, u0.flat, r.flat, sd.flat
        self.kx, self.ky = kx.flat, ky.flat
        self.theta = theta

    def __call__(self, idx: np.ndarray) -> None:
        i = idx[self.geo.interior_mask(idx)]
        au = self.matvec(i, self.u, self.kx, self.ky, self.geo.east, self.geo.north)
        self.r[i] = self.u0[i] - au
        self.sd[i] = self.r[i] / self.theta
        self.u[i] += self.sd[i]


class ChebyIterateRFunctor(_Functor, _MatVecMixin):
    """Sweep 1: r -= A sd."""

    def __init__(self, geo, r, sd, kx, ky) -> None:
        super().__init__(geo)
        self.r, self.sd = r.flat, sd.flat
        self.kx, self.ky = kx.flat, ky.flat

    def __call__(self, idx: np.ndarray) -> None:
        i = idx[self.geo.interior_mask(idx)]
        self.r[i] -= self.matvec(i, self.sd, self.kx, self.ky, self.geo.east, self.geo.north)


class ChebyIterateSDFunctor(_Functor):
    """Sweep 2: sd = alpha sd + beta src; accum += sd."""

    def __init__(self, geo, sd, src, accum, alpha, beta) -> None:
        super().__init__(geo)
        self.sd, self.src, self.accum = sd.flat, src.flat, accum.flat
        self.alpha, self.beta = alpha, beta

    def __call__(self, idx: np.ndarray) -> None:
        i = idx[self.geo.interior_mask(idx)]
        self.sd[i] = self.alpha * self.sd[i] + self.beta * self.src[i]
        self.accum[i] += self.sd[i]


class PPCGPreconInitFunctor(_Functor):
    """w = r; sd = w/theta; z = sd."""

    def __init__(self, geo, w, sd, z, r, theta) -> None:
        super().__init__(geo)
        self.w, self.sd, self.z, self.r = w.flat, sd.flat, z.flat, r.flat
        self.theta = theta

    def __call__(self, idx: np.ndarray) -> None:
        i = idx[self.geo.interior_mask(idx)]
        self.w[i] = self.r[i]
        self.sd[i] = self.w[i] / self.theta
        self.z[i] = self.sd[i]


class ResidualFunctor(_Functor, _MatVecMixin):
    """r = u0 - A u."""

    def __init__(self, geo, r, u0, u, kx, ky) -> None:
        super().__init__(geo)
        self.r, self.u0, self.u = r.flat, u0.flat, u.flat
        self.kx, self.ky = kx.flat, ky.flat

    def __call__(self, idx: np.ndarray) -> None:
        i = idx[self.geo.interior_mask(idx)]
        self.r[i] = self.u0[i] - self.matvec(i, self.u, self.kx, self.ky, self.geo.east, self.geo.north)


class CGPreconFunctor(_Functor):
    """z = r / diag(A) (the jac_diag preconditioner)."""

    def __init__(self, geo, z, r, kx, ky) -> None:
        super().__init__(geo)
        self.z, self.r = z.flat, r.flat
        self.kx, self.ky = kx.flat, ky.flat

    def __call__(self, idx: np.ndarray) -> None:
        geo = self.geo
        i = idx[geo.interior_mask(idx)]
        self.z[i] = self.r[i] / flat_diag(i, self.kx, self.ky, geo.east, geo.north)


class JacobiFunctor(_Functor):
    """u from the previous iterate un; contributes sum |u - un|."""

    def __init__(self, geo, u, un, u0, kx, ky) -> None:
        super().__init__(geo)
        self.u, self.un, self.u0 = u.flat, un.flat, u0.flat
        self.kx, self.ky = kx.flat, ky.flat

    def __call__(self, idx: np.ndarray) -> np.ndarray:
        geo = self.geo
        inside = geo.interior_mask(idx)
        i = idx[inside]
        e, n = geo.east, geo.north
        diag = flat_diag(i, self.kx, self.ky, e, n)
        self.u[i] = (
            self.u0[i]
            + self.kx[i + e] * self.un[i + e]
            + self.kx[i] * self.un[i - e]
            + self.ky[i + n] * self.un[i + n]
            + self.ky[i] * self.un[i - n]
        ) / diag
        contrib = np.zeros(idx.size)
        contrib[inside] = np.abs(self.u[i] - self.un[i])
        return contrib


class DotFunctor(_Functor):
    def __init__(self, geo, a, b) -> None:
        super().__init__(geo)
        self.a, self.b = a.flat, b.flat

    def __call__(self, idx: np.ndarray) -> np.ndarray:
        inside = self.geo.interior_mask(idx)
        i = idx[inside]
        contrib = np.zeros(idx.size)
        contrib[inside] = self.a[i] * self.b[i]
        return contrib


class FinaliseFunctor(_Functor):
    def __init__(self, geo, energy, u, density) -> None:
        super().__init__(geo)
        self.energy, self.u, self.density = energy.flat, u.flat, density.flat

    def __call__(self, idx: np.ndarray) -> None:
        i = idx[self.geo.interior_mask(idx)]
        self.energy[i] = self.u[i] / self.density[i]


class FieldSummaryFunctor(_Functor):
    """Multi-variable reduction: (volume, mass, ie, temp) contributions."""

    def __init__(self, geo, density, energy, u, cell_volume) -> None:
        super().__init__(geo)
        self.density, self.energy, self.u = density.flat, energy.flat, u.flat
        self.cell_volume = cell_volume

    def __call__(self, idx: np.ndarray):
        inside = self.geo.interior_mask(idx)
        i = idx[inside]
        vol = np.zeros(idx.size)
        mass = np.zeros(idx.size)
        ie = np.zeros(idx.size)
        temp = np.zeros(idx.size)
        vol[inside] = self.cell_volume
        mass[inside] = self.cell_volume * self.density[i]
        ie[inside] = self.cell_volume * self.density[i] * self.energy[i]
        temp[inside] = self.cell_volume * self.u[i]
        return vol, mass, ie, temp


# --------------------------------------------------------------------- #
# the flat Kokkos port
# --------------------------------------------------------------------- #
class KokkosPort(Port):
    """Flat-RangePolicy functor port with loop-body halo conditionals."""

    model_name = "kokkos"

    #: Functor launches are plain parallel dispatches with no implicit
    #: fences between them, so the plan compiler may fuse adjacent ones.
    supports_fusion = True

    def __init__(
        self,
        grid: Grid2D,
        trace: Trace | None = None,
        layout: Layout = Layout.RIGHT,
    ) -> None:
        super().__init__(grid, trace)
        # Layout polymorphism (§2.4 / §8 "adjusting data layouts per
        # device"): the same functors run over LayoutRight (CPU) or
        # LayoutLeft (the CUDA coalescing default) views, with neighbour
        # offsets derived from the layout's strides.
        self.geo = _Geometry(grid, layout)
        self.views: dict[str, View] = {
            name: View(name, grid.shape, layout, MemorySpace.DEVICE)
            for name in F.FIELD_ORDER
        }
        self._policy = RangePolicy(0, self.geo.NX * self.geo.NY)
        select = self.geo.interior_select()
        self._sum = Sum(select=select)
        self._multi_sum = MultiSum(4, select=select)
        self._rx = 0.0
        self._ry = 0.0

    # ------------------------------------------------------------------ #
    def set_state(self, density: np.ndarray, energy0: np.ndarray) -> None:
        if density.shape != self.grid.shape:
            raise ModelError(
                f"state shape {density.shape} != grid shape {self.grid.shape}"
            )
        for name, host_values in ((F.DENSITY, density), (F.ENERGY0, energy0)):
            mirror = create_mirror_view(self.views[name])
            mirror.data[...] = host_values
            deep_copy(self.views[name], mirror, self.trace)
        self._launch("generate_chunk")

    def read_field(self, name: str) -> np.ndarray:
        mirror = create_mirror_view(self.views[name])
        deep_copy(mirror, self.views[name], self.trace)
        return mirror.data.copy()

    def write_field(self, name: str, values: np.ndarray) -> None:
        mirror = create_mirror_view(self.views[name])
        mirror.data[...] = values
        deep_copy(self.views[name], mirror, self.trace)

    def _device_array(self, name: str) -> np.ndarray:
        return self.views[name].data

    # Views hold a plain assignable ``data`` array and functors capture
    # ``view.flat`` per launch, so adoption is a data rebind.  Under
    # LayoutLeft the F-order reshape of the contiguous arena row shares
    # its buffer — layout polymorphism survives external backing.
    supports_field_binding = True

    def field_memory_order(self) -> str:
        return "C" if self.geo.layout is Layout.RIGHT else "F"

    def bind_field(self, name: str, flat: np.ndarray) -> None:
        self.views[name].data = flat.reshape(
            self.grid.shape, order=self.field_memory_order()
        )
        self.invalidate_residency((name,))

    # ------------------------------------------------------------------ #
    def _k_set_field(self) -> None:
        deep_copy(self.views[F.ENERGY1], self.views[F.ENERGY0])

    def _k_tea_leaf_init(self, dt: float, coefficient: str) -> None:
        g = self.grid
        self._rx = dt / (g.dx * g.dx)
        self._ry = dt / (g.dy * g.dy)
        v = self.views
        parallel_for(
            self._policy,
            TeaLeafInitFunctor(
                self.geo, v[F.DENSITY], v[F.ENERGY1], v[F.U], v[F.U0],
                v[F.KX], v[F.KY], self._rx, self._ry,
                coefficient == "recip_conductivity",
            ),
        )

    def _k_tea_leaf_residual(self) -> None:
        v = self.views
        parallel_for(
            self._policy,
            ResidualFunctor(self.geo, v[F.R], v[F.U0], v[F.U], v[F.KX], v[F.KY]),
        )

    def _k_cg_init(self) -> float:
        v = self.views
        return parallel_reduce(
            self._policy,
            CGInitFunctor(
                self.geo, v[F.U], v[F.U0], v[F.W], v[F.R], v[F.P], v[F.KX], v[F.KY]
            ),
            reducer=self._sum,
        )

    def _k_cg_calc_w(self) -> float:
        v = self.views
        return parallel_reduce(
            self._policy,
            CGCalcWFunctor(self.geo, v[F.P], v[F.W], v[F.KX], v[F.KY]),
            reducer=self._sum,
        )

    def _k_cg_calc_ur(self, alpha: float) -> float:
        v = self.views
        return parallel_reduce(
            self._policy,
            CGCalcURFunctor(self.geo, v[F.U], v[F.R], v[F.P], v[F.W], alpha),
            reducer=self._sum,
        )

    def _k_cg_calc_p(self, beta: float) -> None:
        v = self.views
        parallel_for(self._policy, AxpyFunctor(self.geo, v[F.P], v[F.R], beta))

    def _k_ppcg_calc_p(self, beta: float) -> None:
        v = self.views
        parallel_for(self._policy, AxpyFunctor(self.geo, v[F.P], v[F.Z], beta))

    def _k_cheby_init(self, theta: float) -> None:
        v = self.views
        parallel_for(
            self._policy,
            ChebyInitFunctor(
                self.geo, v[F.U], v[F.U0], v[F.R], v[F.SD], v[F.KX], v[F.KY], theta
            ),
        )

    def _k_cheby_iterate(self, alpha: float, beta: float) -> None:
        v = self.views
        parallel_for(
            self._policy,
            ChebyIterateRFunctor(self.geo, v[F.R], v[F.SD], v[F.KX], v[F.KY]),
        )
        parallel_for(
            self._policy,
            ChebyIterateSDFunctor(self.geo, v[F.SD], v[F.R], v[F.U], alpha, beta),
        )

    def _k_ppcg_precon_init(self, theta: float) -> None:
        v = self.views
        parallel_for(
            self._policy,
            PPCGPreconInitFunctor(self.geo, v[F.W], v[F.SD], v[F.Z], v[F.R], theta),
        )

    def _k_ppcg_precon_inner(self, alpha: float, beta: float) -> None:
        v = self.views
        parallel_for(
            self._policy,
            ChebyIterateRFunctor(self.geo, v[F.W], v[F.SD], v[F.KX], v[F.KY]),
        )
        parallel_for(
            self._policy,
            ChebyIterateSDFunctor(self.geo, v[F.SD], v[F.W], v[F.Z], alpha, beta),
        )

    def _k_cg_precon_jacobi(self) -> None:
        v = self.views
        parallel_for(
            self._policy,
            CGPreconFunctor(self.geo, v[F.Z], v[F.R], v[F.KX], v[F.KY]),
        )

    def _k_jacobi_iterate(self) -> float:
        v = self.views
        return parallel_reduce(
            self._policy,
            JacobiFunctor(self.geo, v[F.U], v[F.R], v[F.U0], v[F.KX], v[F.KY]),
            reducer=self._sum,
        )

    def _k_norm2_field(self, name: str) -> float:
        v = self.views
        return parallel_reduce(
            self._policy, DotFunctor(self.geo, v[name], v[name]), reducer=self._sum
        )

    def _k_dot_fields(self, a: str, b: str) -> float:
        v = self.views
        return parallel_reduce(
            self._policy, DotFunctor(self.geo, v[a], v[b]), reducer=self._sum
        )

    def _k_copy_field(self, src: str, dst: str) -> None:
        deep_copy(self.views[dst], self.views[src])

    def _k_tea_leaf_finalise(self) -> None:
        v = self.views
        parallel_for(
            self._policy,
            FinaliseFunctor(self.geo, v[F.ENERGY1], v[F.U], v[F.DENSITY]),
        )

    def _k_field_summary(self) -> tuple[float, float, float, float]:
        v = self.views
        return parallel_reduce(
            self._policy,
            FieldSummaryFunctor(
                self.geo, v[F.DENSITY], v[F.ENERGY1], v[F.U], self.grid.cell_volume
            ),
            reducer=self._multi_sum,
        )


# --------------------------------------------------------------------- #
# hierarchical parallelism (Kokkos HP, Figure 7)
# --------------------------------------------------------------------- #
class KokkosHPPort(KokkosPort):
    """TeamPolicy league over interior rows; no loop-body conditionals.

    Only the performance-critical stencil/reduction kernels are rewritten
    (as the paper's collaboration with Sandia did); trivially parallel
    copies stay flat.
    """

    model_name = "kokkos-hp"

    def __init__(self, grid: Grid2D, trace: Trace | None = None) -> None:
        super().__init__(grid, trace)
        self._team_policy = TeamPolicy(league_size=grid.ny, team_size=grid.nx)

    # row slices for a team ------------------------------------------------
    def _row(self, member: TeamMember, dk: int = 0) -> int:
        return self.h + member.league_rank + dk

    def _cols(self, dj: int = 0) -> slice:
        return slice(self.h + dj, self.h + self.grid.nx + dj)

    def _team_matvec(self, member: TeamMember, v: View) -> np.ndarray:
        kx, ky = self.views[F.KX].data, self.views[F.KY].data
        d = v.data
        I, Ip = self._row(member), self._row(member, 1)
        Im = self._row(member, -1)
        J, Jp, Jm = self._cols(), self._cols(1), self._cols(-1)
        return row_matvec(d, kx, ky, I, Im, Ip, J, Jm, Jp)

    # overridden performance-critical kernels ------------------------------
    def _k_tea_leaf_init(self, dt: float, coefficient: str) -> None:
        g = self.grid
        self._rx = dt / (g.dx * g.dx)
        self._ry = dt / (g.dy * g.dy)
        recip = coefficient == "recip_conductivity"
        v = self.views

        def team_body(member: TeamMember) -> None:
            I, Im = self._row(member), self._row(member, -1)
            J, Jm = self._cols(), self._cols(-1)
            density, energy = v[F.DENSITY].data, v[F.ENERGY1].data
            u, u0 = v[F.U].data, v[F.U0].data
            kx, ky = v[F.KX].data, v[F.KY].data
            u[I, J] = energy[I, J] * density[I, J]
            u0[I, J] = u[I, J]
            wc = 1.0 / density[I, J] if recip else density[I, J]
            wx = 1.0 / density[I, Jm] if recip else density[I, Jm]
            wy = 1.0 / density[Im, J] if recip else density[Im, J]
            kx[I, J] = self._rx * (wx + wc) / (2.0 * wx * wc)
            ky[I, J] = self._ry * (wy + wc) / (2.0 * wy * wc)

        parallel_for(self._team_policy, team_body)
        # Zero-flux walls re-encoded into the iteration space: west faces of
        # the first interior column and the whole south boundary row.
        h, nx, ny = self.h, g.nx, g.ny
        v[F.KX].data[:, h] = 0.0
        v[F.KY].data[h, :] = 0.0

    def _k_tea_leaf_residual(self) -> None:
        v = self.views

        def team_body(member: TeamMember) -> None:
            I, J = self._row(member), self._cols()
            v[F.R].data[I, J] = v[F.U0].data[I, J] - self._team_matvec(member, v[F.U])

        parallel_for(self._team_policy, team_body)

    def _k_cg_init(self) -> float:
        v = self.views

        def team_body(member: TeamMember) -> np.ndarray:
            I, J = self._row(member), self._cols()
            w, r, p = v[F.W].data, v[F.R].data, v[F.P].data
            w[I, J] = self._team_matvec(member, v[F.U])
            r[I, J] = v[F.U0].data[I, J] - w[I, J]
            p[I, J] = r[I, J]
            return r[I, J] * r[I, J]

        return parallel_reduce(self._team_policy, team_body, reducer=Sum())

    def _k_cg_calc_w(self) -> float:
        v = self.views

        def team_body(member: TeamMember) -> np.ndarray:
            I, J = self._row(member), self._cols()
            v[F.W].data[I, J] = self._team_matvec(member, v[F.P])
            return v[F.P].data[I, J] * v[F.W].data[I, J]

        return parallel_reduce(self._team_policy, team_body, reducer=Sum())

    def _k_cg_calc_ur(self, alpha: float) -> float:
        v = self.views

        def team_body(member: TeamMember) -> np.ndarray:
            I, J = self._row(member), self._cols()
            u, r = v[F.U].data, v[F.R].data
            u[I, J] += alpha * v[F.P].data[I, J]
            r[I, J] -= alpha * v[F.W].data[I, J]
            return r[I, J] * r[I, J]

        return parallel_reduce(self._team_policy, team_body, reducer=Sum())

    def _k_cg_calc_p(self, beta: float) -> None:
        self._hp_axpy(F.P, F.R, beta)

    def _k_ppcg_calc_p(self, beta: float) -> None:
        self._hp_axpy(F.P, F.Z, beta)

    def _hp_axpy(self, dst: str, src: str, scale: float) -> None:
        v = self.views

        def team_body(member: TeamMember) -> None:
            I, J = self._row(member), self._cols()
            v[dst].data[I, J] = v[src].data[I, J] + scale * v[dst].data[I, J]

        parallel_for(self._team_policy, team_body)

    def _k_cheby_init(self, theta: float) -> None:
        v = self.views

        def team_body(member: TeamMember) -> None:
            I, J = self._row(member), self._cols()
            r, sd, u = v[F.R].data, v[F.SD].data, v[F.U].data
            r[I, J] = v[F.U0].data[I, J] - self._team_matvec(member, v[F.U])
            sd[I, J] = r[I, J] / theta

        parallel_for(self._team_policy, team_body)

        def team_u(member: TeamMember) -> None:
            I, J = self._row(member), self._cols()
            v[F.U].data[I, J] += v[F.SD].data[I, J]

        parallel_for(self._team_policy, team_u)

    def _k_cheby_iterate(self, alpha: float, beta: float) -> None:
        self._hp_cheby_sweeps(F.R, F.U, alpha, beta)

    def _k_ppcg_precon_inner(self, alpha: float, beta: float) -> None:
        self._hp_cheby_sweeps(F.W, F.Z, alpha, beta)

    def _hp_cheby_sweeps(
        self, resid: str, accum: str, alpha: float, beta: float
    ) -> None:
        v = self.views

        def sweep_r(member: TeamMember) -> None:
            I, J = self._row(member), self._cols()
            v[resid].data[I, J] -= self._team_matvec(member, v[F.SD])

        parallel_for(self._team_policy, sweep_r)

        def sweep_sd(member: TeamMember) -> None:
            I, J = self._row(member), self._cols()
            sd = v[F.SD].data
            sd[I, J] = alpha * sd[I, J] + beta * v[resid].data[I, J]
            v[accum].data[I, J] += sd[I, J]

        parallel_for(self._team_policy, sweep_sd)

    def _k_ppcg_precon_init(self, theta: float) -> None:
        v = self.views

        def team_body(member: TeamMember) -> None:
            I, J = self._row(member), self._cols()
            w, sd, z = v[F.W].data, v[F.SD].data, v[F.Z].data
            w[I, J] = v[F.R].data[I, J]
            sd[I, J] = w[I, J] / theta
            z[I, J] = sd[I, J]

        parallel_for(self._team_policy, team_body)

    def _k_cg_precon_jacobi(self) -> None:
        v = self.views

        def team_body(member: TeamMember) -> None:
            I, Ip = self._row(member), self._row(member, 1)
            J, Jp = self._cols(), self._cols(1)
            kx, ky = v[F.KX].data, v[F.KY].data
            v[F.Z].data[I, J] = v[F.R].data[I, J] / row_diag(kx, ky, I, Ip, J, Jp)

        parallel_for(self._team_policy, team_body)


# --------------------------------------------------------------------- #
# registration
# --------------------------------------------------------------------- #
_KOKKOS_SUPPORT = {
    DeviceKind.CPU: Support.YES,
    DeviceKind.GPU: Support.YES,
    DeviceKind.KNC: Support.NATIVE,
}


class KokkosModel(ProgrammingModel):
    capabilities = Capabilities(
        name="kokkos",
        display_name="Kokkos",
        directive_based=False,
        language="C++11",
        support=_KOKKOS_SUPPORT,
        cross_platform=True,
        summary="Template-metaprogramming portability layer (Sandia/Trilinos); "
        "flat functors with loop-body halo conditionals.",
    )

    def make_port(self, grid: Grid2D, trace: Trace | None = None) -> KokkosPort:
        return KokkosPort(grid, trace)


class KokkosHPModel(ProgrammingModel):
    capabilities = Capabilities(
        name="kokkos-hp",
        display_name="Kokkos (hierarchical parallelism)",
        directive_based=False,
        language="C++11",
        support=_KOKKOS_SUPPORT,
        cross_platform=True,
        summary="Figure-7 TeamPolicy rewrite re-encoding halo exclusion into "
        "the iteration space (Sandia collaboration).",
    )

    def make_port(self, grid: Grid2D, trace: Trace | None = None) -> KokkosHPPort:
        return KokkosHPPort(grid, trace)


register_model(KokkosModel())
register_model(KokkosHPModel())
