"""Shared 5-point stencil arithmetic and interior-index helpers.

Every port applies the same symmetric five-point operator

    (A v)_ij = (1 + kxE + kxW + kyN + kyS) v_ij
               - (kxE v_E + kxW v_W) - (kyN v_N + kyS v_S)

but the paper's ports each re-derived the index arithmetic in their own
idiom: CUDA and OpenCL from a flattened 1-D launch index, Kokkos from
layout-polymorphic strides, RAJA from precomputed indirection lists, and
the OpenMP/OpenACC loop bodies from 2-D row slabs.  The *expressions* were
copy-pasted between those files; this module is the single home for them.

Bitwise contract: callers pass their own neighbour offsets / slices, and
each helper keeps exactly one association order, so all ports produce
bit-for-bit identical values regardless of how they index (the PR 3
equivalence gate depends on this).
"""

from __future__ import annotations

import numpy as np


def decode_interior(idx: np.ndarray, n: int, pitch: int, h: int, nx: int):
    """Overspill guard + interior flat-index computation for 1-D launches.

    ``idx`` is the batch of global work-item / thread indices; returns
    ``(valid, i, j, k)`` where ``valid`` masks indices below ``n``, ``i``
    is the flat padded-array position of each interior cell, and ``j``/``k``
    are its padded column/row coordinates.
    """
    valid = idx < n
    c = idx[valid]
    k = c // nx + h
    j = c % nx + h
    return valid, k * pitch + j, j, k


def flat_matvec(i: np.ndarray, v, kx, ky, east: int, north: int) -> np.ndarray:
    """A v at flat interior indices ``i`` with explicit neighbour offsets.

    CUDA/OpenCL pass ``east=1, north=pitch`` (row-major flattening), Kokkos
    passes its layout-derived strides, RAJA ``east=1, north=pitch``.
    """
    return (
        (1.0 + kx[i + east] + kx[i] + ky[i + north] + ky[i]) * v[i]
        - (kx[i + east] * v[i + east] + kx[i] * v[i - east])
        - (ky[i + north] * v[i + north] + ky[i] * v[i - north])
    )


def flat_diag(i: np.ndarray, kx, ky, east: int, north: int) -> np.ndarray:
    """diag(A) at flat interior indices ``i`` (Jacobi / jac_diag kernels)."""
    return 1.0 + kx[i + east] + kx[i] + ky[i + north] + ky[i]


def row_matvec(v, kx, ky, I, Im, Ip, J, Jm, Jp) -> np.ndarray:
    """A v over a 2-D row slab given centre/shifted row and column slices.

    The OpenMP slab bodies pass slices covering rows ``[r0, r1)``; the
    Kokkos hierarchical port passes a single team row.
    """
    return (
        (1.0 + kx[I, Jp] + kx[I, J] + ky[Ip, J] + ky[I, J]) * v[I, J]
        - (kx[I, Jp] * v[I, Jp] + kx[I, J] * v[I, Jm])
        - (ky[Ip, J] * v[Ip, J] + ky[I, J] * v[Im, J])
    )


def row_diag(kx, ky, I, Ip, J, Jp) -> np.ndarray:
    """diag(A) over a 2-D row slab."""
    return 1.0 + kx[I, Jp] + kx[I, J] + ky[Ip, J] + ky[I, J]


def face_coefficient(wa, wb, scale):
    """Harmonic-mean face conduction coefficient with rx/ry folded in.

    ``scale * (wa + wb) / (2 wa wb)`` in exactly this association order —
    the tea_leaf_init bodies of every port (and the codegen backend) must
    produce the same bits for kx/ky or nothing downstream matches.
    """
    return scale * (wa + wb) / (2.0 * wa * wb)
