"""Execution tracing shared by all programming-model emulations.

Every port action that would cost time on a real device is recorded as an
:class:`Event`:

* ``KERNEL`` — one device kernel launch, with streaming byte and flop counts
  derived from the kernel registry (:mod:`repro.core.kernels`);
* ``TRANSFER`` — an explicit host<->device copy (CUDA memcpy, OpenCL
  enqueue, OpenMP ``map``/``update``, Kokkos ``deep_copy``...);
* ``REDUCTION_PASS`` — the extra device pass needed to combine partial
  reduction results (manual tree reductions in CUDA/OpenCL, Kokkos
  ``parallel_reduce`` finalisation);
* ``REGION`` — entry into an offload region (OpenMP ``target``, OpenACC
  ``kernels``) — the per-invocation overhead the paper measures for
  OpenMP 4.0 (§3.1: "a performance overhead dependent upon the number of
  target invocations").

Events carry a tag set so the harness can slice a trace by solver phase.
"""

from __future__ import annotations

from collections import Counter
from contextlib import contextmanager
from dataclasses import dataclass
from enum import Enum
from typing import Iterator


class EventKind(Enum):
    KERNEL = "kernel"
    TRANSFER = "transfer"
    REDUCTION_PASS = "reduction_pass"
    REGION = "region"


class TransferDirection(Enum):
    H2D = "h2d"
    D2H = "d2h"


@dataclass(frozen=True)
class Event:
    """One traced device action."""

    kind: EventKind
    name: str
    bytes_moved: int = 0
    flops: int = 0
    cells: int = 0
    has_reduction: bool = False
    direction: TransferDirection | None = None
    tags: frozenset[str] = frozenset()

    def tagged(self, tag: str) -> bool:
        return tag in self.tags


class Trace:
    """Ordered event log with tag scoping and aggregate queries."""

    def __init__(self) -> None:
        self.events: list[Event] = []
        self._tag_stack: list[str] = []

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #
    @contextmanager
    def section(self, tag: str) -> Iterator[None]:
        """Tag every event recorded inside the block with ``tag``."""
        self._tag_stack.append(tag)
        try:
            yield
        finally:
            self._tag_stack.pop()

    def _tags(self) -> frozenset[str]:
        return frozenset(self._tag_stack)

    def kernel(
        self,
        name: str,
        bytes_moved: int,
        flops: int,
        cells: int,
        has_reduction: bool = False,
    ) -> None:
        self.events.append(
            Event(
                EventKind.KERNEL,
                name,
                bytes_moved=bytes_moved,
                flops=flops,
                cells=cells,
                has_reduction=has_reduction,
                tags=self._tags(),
            )
        )

    def transfer(self, name: str, nbytes: int, direction: TransferDirection) -> None:
        if nbytes < 0:
            raise ValueError(f"transfer '{name}': negative byte count {nbytes}")
        self.events.append(
            Event(
                EventKind.TRANSFER,
                name,
                bytes_moved=nbytes,
                direction=direction,
                tags=self._tags(),
            )
        )

    def reduction_pass(self, name: str, nbytes: int = 0) -> None:
        self.events.append(
            Event(EventKind.REDUCTION_PASS, name, bytes_moved=nbytes, tags=self._tags())
        )

    def region(self, name: str) -> None:
        """Record entry into an offload region (one per directive hit)."""
        self.events.append(Event(EventKind.REGION, name, tags=self._tags()))

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def filtered(self, tag: str | None = None, kind: EventKind | None = None) -> list[Event]:
        out = self.events
        if tag is not None:
            out = [e for e in out if e.tagged(tag)]
        if kind is not None:
            out = [e for e in out if e.kind is kind]
        return out

    def kernel_launches(self, tag: str | None = None) -> int:
        return len(self.filtered(tag, EventKind.KERNEL))

    def region_entries(self, tag: str | None = None) -> int:
        return len(self.filtered(tag, EventKind.REGION))

    def kernel_bytes(self, tag: str | None = None) -> int:
        """Streaming bytes moved by kernels (the Figure 12 numerator)."""
        return sum(e.bytes_moved for e in self.filtered(tag, EventKind.KERNEL))

    def transfer_bytes(self, tag: str | None = None) -> int:
        return sum(e.bytes_moved for e in self.filtered(tag, EventKind.TRANSFER))

    def flops(self, tag: str | None = None) -> int:
        return sum(e.flops for e in self.filtered(tag, EventKind.KERNEL))

    def reduction_count(self, tag: str | None = None) -> int:
        return sum(
            1 for e in self.filtered(tag, EventKind.KERNEL) if e.has_reduction
        ) + len(self.filtered(tag, EventKind.REDUCTION_PASS))

    def kernel_histogram(self, tag: str | None = None) -> Counter:
        """Launch counts per kernel name."""
        return Counter(e.name for e in self.filtered(tag, EventKind.KERNEL))

    def tags(self) -> set[str]:
        out: set[str] = set()
        for e in self.events:
            out |= e.tags
        return out

    def clear(self) -> None:
        if self._tag_stack:
            raise RuntimeError("cannot clear a trace inside an open section")
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)

    def to_records(self) -> list[dict]:
        """Events as JSON-serialisable dicts (for offline analysis)."""
        out = []
        for e in self.events:
            record = {
                "kind": e.kind.value,
                "name": e.name,
                "bytes": e.bytes_moved,
                "flops": e.flops,
                "cells": e.cells,
                "reduction": e.has_reduction,
                "tags": sorted(e.tags),
            }
            if e.direction is not None:
                record["direction"] = e.direction.value
            out.append(record)
        return out

    def to_json(self, path=None) -> str:
        """Serialise the trace as JSON; optionally write it to ``path``."""
        import json
        from pathlib import Path

        text = json.dumps(
            {"events": self.to_records(), "summary": self.summary()}, indent=1
        )
        if path is not None:
            Path(path).write_text(text)
        return text

    def summary(self) -> str:
        """Short human-readable digest used by the CLI."""
        return (
            f"{self.kernel_launches()} kernel launches, "
            f"{self.kernel_bytes() / 1e9:.3f} GB streamed, "
            f"{self.transfer_bytes() / 1e9:.3f} GB transferred, "
            f"{self.region_entries()} offload regions, "
            f"{self.reduction_count()} reductions"
        )
