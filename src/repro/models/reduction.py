"""The shared deterministic reduction core.

Every port emulation used to finalise its reductions in its own floating
point order — Kokkos summed a whole contribution array with ``np.sum``,
RAJA accumulated per-segment partials left to right, CUDA and OpenCL ran
an in-device tree and then ``np.sum``-ed the block partials on the host,
and OpenMP summed per-thread chunk partials at the join.  Those orders all
differ at ULP level, so CG's ``alpha``/``beta`` diverged across ports and
the drift compounded over hundreds of iterations, breaking the paper's
premise that "core solver logic and parameters were kept consistent
between ports".

This module defines the *one* canonical summation order every port now
finalises through:

1. the contribution vector (one value per interior cell, row-major) is
   zero-padded to a whole number of :data:`CHUNK`-wide chunks;
2. each chunk is folded by the classic power-of-two stride-halving
   pairwise tree — exactly the shared-memory tree the CUDA/OpenCL
   emulations already run per block/work-group of :data:`CHUNK` lanes, so
   their in-device stage *is* the canonical chunk stage;
3. the chunk partials are zero-padded to the next power of two and folded
   by the same pairwise tree (:func:`combine_partials`), replacing each
   port's ad-hoc host-side combine.

Zero-padding is exact for IEEE-754 addition (``x + 0.0 == x`` for every
non-degenerate ``x``), so any port that naturally produces a zero tail —
a GPU launch rounded up to whole blocks, say — already matches the
canonical padding bit for bit.

Each port still *dispatches* its reduction through its own API shape
(functors + reducers, ``ReduceSum`` objects, device partials buffers,
``reduction(+:...)`` chunk partials) and still records its own trace
events; only the floating-point combine order is shared.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

#: Canonical chunk width: the CUDA block size / OpenCL work-group size the
#: TeaLeaf GPU ports launch with, so the device tree equals the chunk tree.
CHUNK = 128


def _tree_fold(rows: np.ndarray) -> np.ndarray:
    """Fold each row of ``(m, 2**k)`` by the stride-halving pairwise tree.

    This is the shared-memory reduction loop —
    ``if (tid < stride) sdata[tid] += sdata[tid + stride]`` — applied to
    every row at once; returns the ``m`` per-row results.
    """
    work = np.asarray(rows, dtype=np.float64).copy()
    stride = work.shape[1] // 2
    while stride >= 1:
        work[:, :stride] += work[:, stride : 2 * stride]
        stride //= 2
    return work[:, 0].copy()


def chunk_partials(values: np.ndarray, chunk: int = CHUNK) -> np.ndarray:
    """Stage 1: per-chunk pairwise-tree sums of a zero-padded vector."""
    flat = np.asarray(values, dtype=np.float64).ravel()
    if flat.size == 0:
        return np.zeros(0)
    pad = (-flat.size) % chunk
    if pad:
        flat = np.concatenate([flat, np.zeros(pad)])
    return _tree_fold(flat.reshape(-1, chunk))


def combine_partials(partials: np.ndarray) -> float:
    """Stage 2: fold chunk/block partials by one zero-padded pairwise tree.

    This is the canonical host-side combine: GPU ports call it directly on
    the block partials they copied back from the device.
    """
    flat = np.asarray(partials, dtype=np.float64).ravel()
    if flat.size == 0:
        return 0.0
    width = 1
    while width < flat.size:
        width <<= 1
    if width > flat.size:
        flat = np.concatenate([flat, np.zeros(width - flat.size)])
    return float(_tree_fold(flat.reshape(1, width))[0])


def deterministic_sum(values: np.ndarray, chunk: int = CHUNK) -> float:
    """The canonical fixed-shape sum every port's reduction finalises with."""
    return combine_partials(chunk_partials(values, chunk))


def deterministic_dot(a: np.ndarray, b: np.ndarray) -> float:
    """Canonical dot product: elementwise products, canonical sum."""
    av = np.asarray(a, dtype=np.float64).ravel()
    bv = np.asarray(b, dtype=np.float64).ravel()
    return deterministic_sum(av * bv)


def deterministic_multi_sum(arrays: Sequence[np.ndarray]) -> tuple[float, ...]:
    """Multi-accumulator variant (the field summary's four totals)."""
    return tuple(deterministic_sum(a) for a in arrays)
