"""Plan-level NumPy codegen: the compiled hot path.

The interpreted executor is faithful but slow: every kernel body is a
Python loop nest over row slabs (or a simulated device runtime), so wall
time is dominated by interpreter frames rather than arithmetic.  This
module lowers a compiled :class:`~repro.models.plan.Plan` one step
further: each :class:`~repro.models.plan.KernelCall` — or whole
:class:`~repro.models.plan.FusedGroup` — becomes **one generated Python
function** whose body is a straight chain of whole-interior NumPy ufunc
expressions built from the :data:`~repro.models.plan.OPS` dataflow table.
No per-cell frames, no per-slab dispatch, no per-call method lookups.

Bitwise contract
----------------
Generated bodies reuse the exact shared arithmetic helpers the
interpreted ports use (:func:`~repro.models.stencil.row_matvec`,
:func:`~repro.models.stencil.row_diag`,
:func:`~repro.models.stencil.face_coefficient`,
:func:`~repro.models.loopbodies.zero_boundary_coefficients`) with the
same association orders over the same full-interior slices, and every
reduction feeds its row-major contribution vector through
:func:`~repro.models.reduction.deterministic_sum` — the same pairwise
tree every port finalises with.  A codegen run is therefore
bit-for-bit identical to the interpreted run on every port.

Caching
-------
Generated functions contain **no geometry and no scalars**: grid facts
arrive through a per-port :class:`CodegenContext` and scalar arguments
through a per-execution ``argv`` table, so the only thing baked into
source text is field *names*.  That makes the module-level function
cache (:data:`CACHE_STATS` counts hits/misses) shareable across ports,
grids, and plan instances; the per-plan ``Plan._compiled`` entry keyed
by (fuse, transparency, instrument, codegen, overlap) then reuses each
lowered step list wholesale across iterations.  :data:`CACHE_STATS` is
the process-global aggregate — per-run rates come from
``PlanExecutor.codegen_cache_stats``, which snapshots it at executor
construction.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.core import fields as F
from repro.core.kernels import KernelSpec
from repro.core.operators import RECIP_CONDUCTIVITY
from repro.models.loopbodies import zero_boundary_coefficients
from repro.models.plan import OPS, Bind, CompiledKernel, FusedGroup, KernelCall
from repro.models.reduction import deterministic_sum
from repro.models.stencil import face_coefficient, row_diag, row_matvec


class CodegenContext:
    """Geometry + array access environment for generated bodies.

    One per port, built lazily by ``Port._codegen_ctx``.  ``array`` is
    the port's ``_device_array`` accessor — the same arrays the halo
    logic mutates — so generated writes land exactly where the
    interpreted ``_k_*`` primitives write.  ``dx2``/``dy2`` are the
    precomputed squares: ports compute ``rx = dt / (dx*dx)``, and the
    generated code must divide by the identical product to match bits.
    """

    __slots__ = (
        "array", "h", "nx", "ny", "dx2", "dy2",
        "I", "Ip", "Im", "J", "Jp", "Jm",
    )

    def reduce(self, values: np.ndarray) -> float:
        """Canonical deterministic interior reduction.

        Generated bodies route every reduction through the context's
        ``reduce`` (bound as ``RD`` in the preamble) instead of calling
        ``deterministic_sum`` directly, so a batched context
        (:class:`repro.core.batch.BatchContext`) can substitute a
        per-lane loop over the trailing lane axis while each lane's sum
        stays bitwise the sequential one.
        """
        return deterministic_sum(values.ravel())

    def __init__(self, array: Callable[[str], np.ndarray], grid: Any) -> None:
        h, nx, ny = grid.halo, grid.nx, grid.ny
        self.array = array
        self.h, self.nx, self.ny = h, nx, ny
        self.dx2 = grid.dx * grid.dx
        self.dy2 = grid.dy * grid.dy
        #: Full-interior row/column slices and their stencil shifts —
        #: the r0=0, r1=ny slab of the interpreted loop bodies.
        self.I = slice(h, h + ny)
        self.Ip = slice(h + 1, h + ny + 1)
        self.Im = slice(h - 1, h + ny - 1)
        self.J = slice(h, h + nx)
        self.Jp = slice(h + 1, h + nx + 1)
        self.Jm = slice(h - 1, h + nx - 1)


# --------------------------------------------------------------------- #
# the template table
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class _Template:
    """How one operation lowers to source lines.

    ``fields(args)`` lists the fields the body touches (fetch order =
    first use); ``emit(lines, args, k)`` appends the member body, where
    ``k`` is the member slot indexing ``argv`` and suffixing locals.
    ``baked`` marks arg positions whose *values* are baked into the
    generated source (field-name strings only — never scalars), and so
    participate in the function-cache key.  ``launches`` overrides the
    default single traced launch.
    """

    fields: Callable[[tuple], tuple[str, ...]]
    emit: Callable[[list[str], tuple, int], None]
    baked: tuple[int, ...] = ()
    launches: Callable[[KernelCall], tuple[tuple[str, KernelSpec | None], ...]] | None = None


def _mv(v: str) -> str:
    return f"row_matvec(v_{v}, v_kx, v_ky, I, Im, Ip, J, Jm, Jp)"


_NONE = "res.append(None)"


def _e_set_field(L: list[str], args: tuple, k: int) -> None:
    L += [f"v_{F.ENERGY1}[I, J] = v_{F.ENERGY0}[I, J]", _NONE]


def _e_tea_leaf_init(L: list[str], args: tuple, k: int) -> None:
    # rx/ry fold dt into the face coefficients; the coefficient-mode
    # branch stays a runtime test on argv so the generated source is
    # shared between conductivity modes (and dt values).
    L += [
        f"dt_{k} = argv[{k}][0]",
        f"rx_{k} = dt_{k} / ctx.dx2",
        f"ry_{k} = dt_{k} / ctx.dy2",
        "v_u[I, J] = v_energy1[I, J] * v_density[I, J]",
        "v_u0[I, J] = v_u[I, J]",
        f"if argv[{k}][1] == RECIP:",
        f"    wc_{k} = 1.0 / v_density[I, J]",
        f"    wx_{k} = 1.0 / v_density[I, Jm]",
        f"    wy_{k} = 1.0 / v_density[Im, J]",
        "else:",
        f"    wc_{k} = v_density[I, J]",
        f"    wx_{k} = v_density[I, Jm]",
        f"    wy_{k} = v_density[Im, J]",
        f"v_kx[I, J] = face_coefficient(wx_{k}, wc_{k}, rx_{k})",
        f"v_ky[I, J] = face_coefficient(wy_{k}, wc_{k}, ry_{k})",
        "zero_boundary_coefficients(v_kx, v_ky, ctx.h, ctx.nx, ctx.ny)",
        _NONE,
    ]


def _e_tea_leaf_residual(L: list[str], args: tuple, k: int) -> None:
    L += [f"v_r[I, J] = v_u0[I, J] - {_mv('u')}", _NONE]


def _e_cg_init(L: list[str], args: tuple, k: int) -> None:
    L += [
        f"v_w[I, J] = {_mv('u')}",
        "v_r[I, J] = v_u0[I, J] - v_w[I, J]",
        "v_p[I, J] = v_r[I, J]",
        f"rr_{k} = v_r[I, J]",
        f"res.append(RD(rr_{k} * rr_{k}))",
    ]


def _e_cg_calc_w(L: list[str], args: tuple, k: int) -> None:
    L += [
        f"v_w[I, J] = {_mv('p')}",
        "res.append(RD(v_p[I, J] * v_w[I, J]))",
    ]


def _e_cg_calc_ur(L: list[str], args: tuple, k: int) -> None:
    L += [
        f"a_{k} = argv[{k}][0]",
        f"v_u[I, J] += a_{k} * v_p[I, J]",
        f"v_r[I, J] -= a_{k} * v_w[I, J]",
        f"rr_{k} = v_r[I, J]",
        f"res.append(RD(rr_{k} * rr_{k}))",
    ]


def _e_cg_calc_p(L: list[str], args: tuple, k: int) -> None:
    L += [f"v_p[I, J] = v_r[I, J] + argv[{k}][0] * v_p[I, J]", _NONE]


def _e_ppcg_calc_p(L: list[str], args: tuple, k: int) -> None:
    L += [f"v_p[I, J] = v_z[I, J] + argv[{k}][0] * v_p[I, J]", _NONE]


def _e_cheby_init(L: list[str], args: tuple, k: int) -> None:
    # The interpreted bodies stage A u through the w workspace; w is not
    # in this op's declared write set (every consumer rewrites it first),
    # so the generated body keeps the matvec in a local instead.
    L += [
        f"v_r[I, J] = v_u0[I, J] - {_mv('u')}",
        f"v_sd[I, J] = v_r[I, J] / argv[{k}][0]",
        "v_u[I, J] += v_sd[I, J]",
        _NONE,
    ]


def _e_cheby_iterate(L: list[str], args: tuple, k: int) -> None:
    L += [
        f"v_r[I, J] -= {_mv('sd')}",
        f"v_sd[I, J] = argv[{k}][0] * v_sd[I, J] + argv[{k}][1] * v_r[I, J]",
        "v_u[I, J] += v_sd[I, J]",
        _NONE,
    ]


def _e_ppcg_precon_init(L: list[str], args: tuple, k: int) -> None:
    L += [
        "v_w[I, J] = v_r[I, J]",
        f"v_sd[I, J] = v_w[I, J] / argv[{k}][0]",
        "v_z[I, J] = v_sd[I, J]",
        _NONE,
    ]


def _e_ppcg_precon_inner(L: list[str], args: tuple, k: int) -> None:
    L += [
        f"v_w[I, J] -= {_mv('sd')}",
        f"v_sd[I, J] = argv[{k}][0] * v_sd[I, J] + argv[{k}][1] * v_w[I, J]",
        "v_z[I, J] += v_sd[I, J]",
        _NONE,
    ]


def _e_cg_precon_jacobi(L: list[str], args: tuple, k: int) -> None:
    L += [
        "v_z[I, J] = v_r[I, J] / row_diag(v_kx, v_ky, I, Ip, J, Jp)",
        _NONE,
    ]


def _e_jacobi_iterate(L: list[str], args: tuple, k: int) -> None:
    # Matches the shared shim: stash the old iterate in r (the port's
    # only free array), sweep u from it, return sum |u_new - u_old|.
    L += [
        "v_r[...] = v_u",
        f"diag_{k} = row_diag(v_kx, v_ky, I, Ip, J, Jp)",
        "v_u[I, J] = (v_u0[I, J]"
        " + v_kx[I, Jp] * v_r[I, Jp] + v_kx[I, J] * v_r[I, Jm]"
        " + v_ky[Ip, J] * v_r[Ip, J] + v_ky[I, J] * v_r[Im, J]"
        f") / diag_{k}",
        "res.append(RD(np.abs(v_u[I, J] - v_r[I, J])))",
    ]


def _e_norm2_field(L: list[str], args: tuple, k: int) -> None:
    L += [
        f"vv_{k} = v_{args[0]}[I, J]",
        f"res.append(RD(vv_{k} * vv_{k}))",
    ]


def _e_dot_fields(L: list[str], args: tuple, k: int) -> None:
    L += [f"res.append(RD(v_{args[0]}[I, J] * v_{args[1]}[I, J]))"]


def _e_copy_field(L: list[str], args: tuple, k: int) -> None:
    L += [f"v_{args[1]}[...] = v_{args[0]}", _NONE]


def _e_tea_leaf_finalise(L: list[str], args: tuple, k: int) -> None:
    L += [f"v_{F.ENERGY1}[I, J] = v_u[I, J] / v_{F.DENSITY}[I, J]", _NONE]


def _static(*names: str) -> Callable[[tuple], tuple[str, ...]]:
    return lambda args: names


_TEMPLATES: dict[str, _Template] = {
    "set_field": _Template(_static(F.ENERGY0, F.ENERGY1), _e_set_field),
    "tea_leaf_init": _Template(
        _static(F.DENSITY, F.ENERGY1, F.U, F.U0, F.KX, F.KY), _e_tea_leaf_init
    ),
    "tea_leaf_residual": _Template(
        _static(F.U0, F.U, F.KX, F.KY, F.R), _e_tea_leaf_residual
    ),
    "cg_init": _Template(
        _static(F.U, F.U0, F.KX, F.KY, F.W, F.R, F.P), _e_cg_init
    ),
    "cg_calc_w": _Template(_static(F.P, F.KX, F.KY, F.W), _e_cg_calc_w),
    "cg_calc_ur": _Template(_static(F.U, F.R, F.P, F.W), _e_cg_calc_ur),
    "cg_calc_p": _Template(_static(F.R, F.P), _e_cg_calc_p),
    "ppcg_calc_p": _Template(_static(F.Z, F.P), _e_ppcg_calc_p),
    "cheby_init": _Template(
        _static(F.U, F.U0, F.KX, F.KY, F.R, F.SD), _e_cheby_init
    ),
    "cheby_iterate": _Template(
        _static(F.R, F.SD, F.U, F.KX, F.KY), _e_cheby_iterate
    ),
    "ppcg_precon_init": _Template(
        _static(F.R, F.W, F.SD, F.Z), _e_ppcg_precon_init
    ),
    "ppcg_precon_inner": _Template(
        _static(F.W, F.SD, F.Z, F.KX, F.KY), _e_ppcg_precon_inner
    ),
    "cg_precon_jacobi": _Template(
        _static(F.R, F.KX, F.KY, F.Z), _e_cg_precon_jacobi
    ),
    "jacobi_iterate": _Template(
        _static(F.U, F.U0, F.KX, F.KY, F.R),
        _e_jacobi_iterate,
        launches=lambda c: (("copy_field", None), ("jacobi_iterate", None)),
    ),
    "norm2_field": _Template(
        lambda args: (args[0],), _e_norm2_field, baked=(0,)
    ),
    "dot_fields": _Template(
        lambda args: (args[0], args[1]), _e_dot_fields, baked=(0, 1)
    ),
    "copy_field": _Template(
        lambda args: (args[0], args[1]), _e_copy_field, baked=(0, 1)
    ),
    "tea_leaf_finalise": _Template(
        _static(F.U, F.DENSITY, F.ENERGY1), _e_tea_leaf_finalise
    ),
    # field_summary is intentionally absent: the driver calls it directly
    # on the port, outside any plan, so it never reaches the lowerer.
}


#: Exec environment for generated functions: NumPy plus the shared
#: bitwise-contract helpers every interpreted port already uses.
_GLOBALS: dict[str, Any] = {
    "np": np,
    "dsum": deterministic_sum,
    "row_matvec": row_matvec,
    "row_diag": row_diag,
    "face_coefficient": face_coefficient,
    "zero_boundary_coefficients": zero_boundary_coefficients,
    "RECIP": RECIP_CONDUCTIVITY,
}

#: Generated functions keyed by the member (op, baked-args) tuples.
#: Shared across ports, grids, and plans — nothing grid- or
#: scalar-specific is baked into source text.
_FN_CACHE: dict[tuple, tuple[Callable, str]] = {}

#: Function-cache telemetry (the codegen-cache test reads this).
CACHE_STATS = {"hits": 0, "misses": 0}

#: Guards the function cache: lane threads of a batched run compile
#: concurrently, and function identity doubles as the conductor's
#: grouping key.
_FN_LOCK = threading.Lock()


def clear_cache() -> None:
    """Drop all generated functions and reset the hit/miss counters."""
    _FN_CACHE.clear()
    CACHE_STATS["hits"] = 0
    CACHE_STATS["misses"] = 0


def _cache_key(calls: tuple[KernelCall, ...]) -> tuple:
    return tuple(
        (c.op,) + tuple(c.args[i] for i in _TEMPLATES[c.op].baked)
        for c in calls
    )


def generate_source(calls: tuple[KernelCall, ...]) -> str:
    """The generated function source for ``calls`` (docs/tests helper).

    Generated functions take an optional region ``R`` (a
    :class:`~repro.models.overlap.RegionSlices`): when given, the body's
    slices come from the region instead of the full-interior context, so
    the async overlap executor can run the same cached function over an
    interior core or a boundary strip.  ``ctx.*`` geometry (``h``,
    ``nx``, ``dx2``...) stays whole-grid either way — only the
    whole-interior ops use it, and those are never region-split.
    """
    lines = [
        "def _gen(ctx, argv, R=None):",
        "    A = ctx.array",
        "    S = ctx if R is None else R",
        "    I = S.I; Ip = S.Ip; Im = S.Im",
        "    J = S.J; Jp = S.Jp; Jm = S.Jm",
        "    RD = S.reduce",
    ]
    fetched: list[str] = []
    for c in calls:
        for name in _TEMPLATES[c.op].fields(c.args):
            if name not in fetched:
                fetched.append(name)
    for name in fetched:
        lines.append(f"    v_{name} = A({name!r})")
    lines.append("    res = []")
    for k, c in enumerate(calls):
        lines.append(f"    # -- {c.op}")
        body: list[str] = []
        _TEMPLATES[c.op].emit(body, c.args, k)
        lines.extend("    " + b for b in body)
    lines.append("    return tuple(res)")
    return "\n".join(lines)


def _function_for(calls: tuple[KernelCall, ...]) -> tuple[Callable, str]:
    # Serialised: batched runs compile from several lane threads at
    # once, and the batch conductor groups rendezvoused steps by
    # *function identity* — every lane must get the same object back
    # for one key, never a duplicate compile racing into the cache.
    with _FN_LOCK:
        return _function_for_locked(calls)


def _function_for_locked(calls: tuple[KernelCall, ...]) -> tuple[Callable, str]:
    key = _cache_key(calls)
    hit = _FN_CACHE.get(key)
    if hit is not None:
        CACHE_STATS["hits"] += 1
        return hit
    CACHE_STATS["misses"] += 1
    source = generate_source(calls)
    tag = "+".join(c.op for c in calls)
    ns = dict(_GLOBALS)
    exec(compile(source, f"<codegen:{tag}>", "exec"), ns)
    entry = (ns["_gen"], source)
    _FN_CACHE[key] = entry
    return entry


def _lower(
    calls: tuple[KernelCall, ...],
    launches: tuple[tuple[str, KernelSpec | None], ...],
) -> CompiledKernel:
    fn, source = _function_for(calls)
    return CompiledKernel(
        calls=calls,
        fn=fn,
        launches=launches,
        argv=tuple(c.args for c in calls),
        has_binds=any(isinstance(a, Bind) for c in calls for a in c.args),
        source=source,
    )


def lowerable(step: Any) -> bool:
    """True when ``step`` has a codegen lowering."""
    if isinstance(step, KernelCall):
        return step.op in _TEMPLATES
    if isinstance(step, FusedGroup):
        return all(c.op in _TEMPLATES for c in step.calls)
    return False


def lower_steps(steps: list) -> list:
    """Lower every kernel call / fused group in a compiled step list.

    Halo, scalar, barrier, fault and guard steps pass through unchanged —
    codegen only replaces kernel *bodies*, so instrumentation points and
    execution order are exactly those of the interpreted plan.
    """
    out: list = []
    for step in steps:
        if isinstance(step, KernelCall) and step.op in _TEMPLATES:
            t = _TEMPLATES[step.op]
            launches = (
                t.launches(step)
                if t.launches is not None
                else ((OPS[step.op].kernel, None),)
            )
            out.append(_lower((step,), launches))
        elif isinstance(step, FusedGroup) and all(
            c.op in _TEMPLATES for c in step.calls
        ):
            out.append(_lower(step.calls, ((step.spec.name, step.spec),)))
        else:
            out.append(step)
    return out
