"""Quickstart: solve a heat-conduction problem with one programming model.

Runs the standard TeaLeaf benchmark state layout (a hot rectangular region
in a dense cold background) on a 128x128 mesh with the PPCG solver through
the Kokkos port, and prints per-step convergence and field summaries.

    python examples/quickstart.py [model]
"""

import sys

from repro.core import TeaLeaf, default_deck
from repro.models import available_models


def main() -> None:
    model = sys.argv[1] if len(sys.argv) > 1 else "kokkos"
    if model not in available_models():
        raise SystemExit(
            f"unknown model '{model}'; pick one of: {', '.join(available_models())}"
        )

    deck = default_deck(n=128, solver="ppcg", end_step=3, eps=1e-8)
    app = TeaLeaf(deck, model=model)

    print(f"TeaLeaf {deck.x_cells}x{deck.y_cells}, solver={deck.solver}, model={model}\n")
    result = app.run()
    for step in result.steps:
        line = (
            f"step {step.step}:  {step.solve.iterations:4d} outer + "
            f"{step.solve.inner_iterations:4d} inner iterations, "
            f"relative residual {step.solve.relative_residual:.2e}, "
            f"wall {step.wall_seconds:.2f}s"
        )
        print(line)

    summary = result.final_summary
    print(
        f"\nfinal field summary: volume={summary.volume:.4e} "
        f"mass={summary.mass:.4e} internal energy={summary.internal_energy:.6e} "
        f"temperature={summary.temperature:.6e}"
    )
    print(f"\nexecution trace: {result.trace.summary()}")


if __name__ == "__main__":
    main()
