"""Projecting the evaluation onto Knights Landing (§8 future work).

The paper proposes assessing performance portability "on additional target
hardware ... such as the Intel Xeon Phi Knights Landing with its high
bandwidth memory".  This example runs that projection with the extension
device model: KNL's MCDRAM-as-cache gives TeaLeaf working sets ~5x the DDR
bandwidth, and self-hosting removes the offload penalties that hurt the
directive models on KNC.

Everything printed here is an **estimate** (the paper has no KNL data);
the per-model efficiencies and their rationales live in
``repro/machine/extensions.py``.

    python examples/knl_projection.py
"""

from repro.harness.experiments import projected_runtime
from repro.machine.extensions import (
    KNL_7210,
    knl_models,
    mcdram_speedup,
    project_knl,
)
from repro.models.base import DeviceKind

MESH = 1024
SOLVERS = ("cg", "chebyshev", "ppcg")


def main() -> None:
    print(KNL_7210.describe())
    print(
        f"MCDRAM effective-bandwidth multiplier for a {MESH}x{MESH} "
        f"TeaLeaf working set: {mcdram_speedup(MESH):.1f}x\n"
    )

    header = (
        f"{'model':12s} " + " ".join(f"{s:>22s}" for s in SOLVERS)
    )
    print(f"simulated solve seconds at {MESH}x{MESH} (KNC -> KNL):")
    print(header)
    print("-" * len(header))
    for model in knl_models():
        cells = []
        for solver in SOLVERS:
            knl = project_knl(model, solver, n=MESH, steps=2).seconds
            try:
                knc = projected_runtime(model, DeviceKind.KNC, solver, MESH, 2).total
                cells.append(f"{knc:8.2f} -> {knl:7.2f}s")
            except Exception:
                cells.append(f"     n/a -> {knl:7.2f}s")
        print(f"{model:12s} " + " ".join(f"{c:>22s}" for c in cells))

    print(
        "\nEvery model improves: the HBM lifts the bandwidth roof and "
        "self-hosting removes the target-region and PCIe costs that "
        "dominated KNC offload (estimates, not measurements)."
    )


if __name__ == "__main__":
    main()
