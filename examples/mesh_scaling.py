"""Figure 11 in miniature: runtime growth as the mesh is incremented.

Measures *real* iteration counts at small meshes, fits the O(n) growth,
synthesizes exact traces for the sweep sizes, and prints the simulated
runtime of a representative model set on each device — showing the high
intercepts of the offload models, the near-linear GPU growth, and the CPU
cache knee the paper discusses in §5.

    python examples/mesh_scaling.py
"""

from repro.harness.experiments import PAPER_EPS, projected_runtime
from repro.machine.iterations import fit_iteration_model
from repro.models.base import DeviceKind

MESHES = [175, 350, 525, 700, 875, 1050, 1225]
SERIES = [
    ("openmp-f90", DeviceKind.CPU),
    ("cuda", DeviceKind.GPU),
    ("openacc", DeviceKind.GPU),
    ("openmp4", DeviceKind.KNC),
    ("opencl", DeviceKind.KNC),
]


def main() -> None:
    it_model = fit_iteration_model("cg")
    print(
        f"iteration growth fit: outer/step ~ {it_model.slope:.3f} n + "
        f"{it_model.intercept:.1f} (r^2 = {it_model.r_squared:.4f})\n"
    )

    labels = [f"{m}@{k.value}" for m, k in SERIES]
    print(f"{'mesh':>10s} " + " ".join(f"{label:>18s}" for label in labels))
    rows = {}
    for n in MESHES:
        cells = n * n
        row = []
        for model, kind in SERIES:
            bd = projected_runtime(model, kind, "cg", n, 2)
            row.append(bd)
        rows[n] = row
        print(
            f"{n:>6d}^2   "
            + " ".join(f"{bd.total:14.2f}s    " for bd in row)
        )

    print("\noverhead share of runtime (the Figure 11 'intercepts'):")
    print(f"{'mesh':>10s} " + " ".join(f"{label:>18s}" for label in labels))
    for n in (MESHES[0], MESHES[-1]):
        print(
            f"{n:>6d}^2   "
            + " ".join(f"{bd.overhead_fraction:14.1%}    " for bd in rows[n])
        )

    # the CPU knee: per-cell-iteration time before vs after LLC saturation
    f90_small = rows[MESHES[0]][0]
    f90_large = rows[MESHES[-1]][0]
    per_cell = lambda bd, n: bd.total / (n * n) / it_model.outer_per_step(n, PAPER_EPS)
    knee = per_cell(f90_large, MESHES[-1]) / per_cell(f90_small, MESHES[0])
    print(
        f"\nCPU per-cell-iteration time grows {knee:.2f}x across the sweep: "
        "the cache-saturation knee (paper: ~9e5 cells)."
    )


if __name__ == "__main__":
    main()
