"""MPI+X in miniature: a decomposed run over per-rank ports.

The paper notes that every evaluated programming model is node-level only;
inter-node parallelism stays with MPI (§3).  This example block-decomposes
the mesh over four simulated ranks — each running its own CUDA port — and
shows that the solvers, driven unchanged through the MultiChunkPort, agree
with a single-chunk run to machine precision while real pack/unpack halo
messages flow between ranks.

    python examples/mpi_decomposition.py
"""

import numpy as np

from repro.comm import MultiChunkPort
from repro.core import TeaLeaf, default_deck
from repro.core import fields as F

N = 96
RANKS = 4
MODEL = "cuda"


def main() -> None:
    deck = default_deck(n=N, solver="ppcg", end_step=2, eps=1e-9)
    grid = deck.grid()

    print(f"single-chunk reference run ({MODEL}, {N}x{N}, {deck.solver})...")
    single = TeaLeaf(deck, model=MODEL)
    single_result = single.run()

    print(f"decomposed run over {RANKS} ranks...")
    port = MultiChunkPort(grid, RANKS, model=MODEL)
    multi = TeaLeaf(deck, port=port)
    multi_result = multi.run()

    for window in port.windows:
        print(
            f"  rank {window.rank}: cells [{window.x0}:{window.x1}) x "
            f"[{window.y0}:{window.y1}), neighbours "
            f"L={window.left} R={window.right} D={window.down} U={window.up}"
        )

    diff = float(
        np.max(
            np.abs(
                multi.field(F.U)[grid.inner()] - single.field(F.U)[grid.inner()]
            )
        )
    )
    print(f"\nmax |u_multi - u_single| = {diff:.3e}")
    print(
        f"iterations: single={single_result.total_iterations}, "
        f"decomposed={multi_result.total_iterations} (must match)"
    )
    print(
        f"comm traffic: {port.world.messages_sent} messages, "
        f"{port.world.bytes_sent / 1e6:.2f} MB, "
        f"{port.world.allreduce_count} allreduces"
    )


if __name__ == "__main__":
    main()
