"""Writing the same kernel in every programming model's API.

The paper's core subject is the *shape* each model imposes on the same
computation.  This example implements one daxpy-like kernel
(``y = a*x + y`` over 1e5 elements) directly against each emulated API —
the boilerplate you see below is the boilerplate the paper's porting
effort measured (§3).

    python examples/writing_a_port.py
"""

import numpy as np

N = 100_000
A = 2.5


def with_openmp3() -> np.ndarray:
    """OpenMP 3.0: a parallel-for over static chunks.  Minimal ceremony."""
    from repro.models.openmp import OpenMPRuntime

    x, y = np.arange(N, dtype=float), np.ones(N)
    omp = OpenMPRuntime(num_threads=16)
    # #pragma omp parallel for schedule(static)
    omp.parallel_for(N, lambda s, e: y.__setitem__(slice(s, e), A * x[s:e] + y[s:e]))
    return y


def with_kokkos() -> np.ndarray:
    """Kokkos: Views + a lambda dispatched over a RangePolicy."""
    from repro.models import kokkos

    x = kokkos.View("x", (N,))
    y = kokkos.View("y", (N,))
    x.data[...] = np.arange(N, dtype=float)
    y.data[...] = 1.0
    kokkos.parallel_for(
        kokkos.RangePolicy(0, N),
        lambda i: y.flat.__setitem__(i, A * x.flat[i] + y.flat[i]),
    )
    # move the result back to the host space explicitly
    mirror = kokkos.create_mirror_view(y)
    kokkos.deep_copy(mirror, y)
    return mirror.data.copy()


def with_raja() -> np.ndarray:
    """RAJA: a lambda over an IndexSet, reductions via ReduceSum objects."""
    from repro.models import raja

    x, y = np.arange(N, dtype=float), np.ones(N)
    iset = raja.IndexSet([raja.RangeSegment(0, N // 2), raja.RangeSegment(N // 2, N)])
    raja.forall(
        raja.omp_parallel_for_exec,
        iset,
        lambda i: y.__setitem__(i, A * x[i] + y[i]),
    )
    return y


def with_cuda() -> np.ndarray:
    """CUDA: explicit device memory, memcpy, and <<<grid, block>>> math."""
    from repro.models import cuda

    rt = cuda.CudaRuntime()
    d_x = rt.malloc(N, "x")
    d_y = rt.malloc(N, "y")
    rt.memcpy(d_x, np.arange(N, dtype=float), cuda.MemcpyKind.HOST_TO_DEVICE)
    rt.memcpy(d_y, np.ones(N), cuda.MemcpyKind.HOST_TO_DEVICE)

    def daxpy_kernel(ctx, n, a, xx, yy):
        idx = ctx.blockIdx_x * ctx.blockDim_x + ctx.threadIdx_x
        i = idx[idx < n]  # guard iteration overspill
        yy[i] = a * xx[i] + yy[i]

    block = cuda.Dim3(128)
    grid = cuda.Dim3(cuda.blocks_for(N, 128))
    cuda.launch(daxpy_kernel, grid, block, N, A, d_x.data, d_y.data)
    out = np.zeros(N)
    rt.memcpy(out, d_y, cuda.MemcpyKind.DEVICE_TO_HOST)
    return out


def with_opencl() -> np.ndarray:
    """OpenCL: the full platform/context/queue/program/set_arg ceremony."""
    from repro.models import opencl

    platform, device = opencl.platform.find_device(opencl.DeviceType.GPU)
    ctx = opencl.Context([device])
    queue = opencl.CommandQueue(ctx, device)

    def daxpy_cl(gid, n, a, xx, yy):
        i = gid[gid < n]
        yy[i] = a * xx[i] + yy[i]

    program = opencl.Program(ctx, {"daxpy": daxpy_cl}).build()
    kernel = program.create_kernel("daxpy")
    buf_x = opencl.Buffer(ctx, opencl.MemFlags.READ_ONLY, size=N * 8)
    buf_y = opencl.Buffer(ctx, opencl.MemFlags.READ_WRITE, size=N * 8)
    queue.enqueue_write_buffer(buf_x, np.arange(N, dtype=float))
    queue.enqueue_write_buffer(buf_y, np.ones(N))
    kernel.set_arg(0, N)
    kernel.set_arg(1, A)
    kernel.set_arg(2, buf_x)
    kernel.set_arg(3, buf_y)
    local = 128
    global_size = ((N + local - 1) // local) * local
    queue.enqueue_nd_range_kernel(kernel, global_size, local)
    queue.finish()
    out = np.zeros(N)
    queue.enqueue_read_buffer(buf_y, out)
    return out


def with_openmp4() -> np.ndarray:
    """OpenMP 4.0: target data mapping + a target region per kernel."""
    from repro.models.openmp.directives import (
        DeviceDataEnvironment,
        TargetDataRegion,
        target,
    )
    from repro.models.tracing import Trace

    trace = Trace()
    env = DeviceDataEnvironment(trace)
    x, y = np.arange(N, dtype=float), np.ones(N)
    with TargetDataRegion(env, map_to={"x": x}, map_tofrom={"y": y}):
        with target(env, trace, "daxpy") as dev:
            dx, dy = dev.device("x"), dev.device("y")
            dy[...] = A * dx + dy
    return y


def main() -> None:
    expected = A * np.arange(N, dtype=float) + 1.0
    for name, fn in (
        ("OpenMP 3.0", with_openmp3),
        ("Kokkos", with_kokkos),
        ("RAJA", with_raja),
        ("CUDA", with_cuda),
        ("OpenCL", with_opencl),
        ("OpenMP 4.0", with_openmp4),
    ):
        result = fn()
        ok = np.allclose(result, expected)
        print(f"{name:12s} daxpy: {'OK' if ok else 'WRONG'}")
        assert ok


if __name__ == "__main__":
    main()
