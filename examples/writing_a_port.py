"""Writing the same kernel in every programming model's API.

The paper's core subject is the *shape* each model imposes on the same
computation.  This example implements one daxpy-like kernel
(``y = a*x + y`` over 1e5 elements) directly against each emulated API —
the boilerplate you see below is the boilerplate the paper's porting
effort measured (§3).

    python examples/writing_a_port.py
"""

import numpy as np

N = 100_000
A = 2.5


def with_openmp3() -> np.ndarray:
    """OpenMP 3.0: a parallel-for over static chunks.  Minimal ceremony."""
    from repro.models.openmp import OpenMPRuntime

    x, y = np.arange(N, dtype=float), np.ones(N)
    omp = OpenMPRuntime(num_threads=16)
    # #pragma omp parallel for schedule(static)
    omp.parallel_for(N, lambda s, e: y.__setitem__(slice(s, e), A * x[s:e] + y[s:e]))
    return y


def with_kokkos() -> np.ndarray:
    """Kokkos: Views + a lambda dispatched over a RangePolicy."""
    from repro.models import kokkos

    x = kokkos.View("x", (N,))
    y = kokkos.View("y", (N,))
    x.data[...] = np.arange(N, dtype=float)
    y.data[...] = 1.0
    kokkos.parallel_for(
        kokkos.RangePolicy(0, N),
        lambda i: y.flat.__setitem__(i, A * x.flat[i] + y.flat[i]),
    )
    # move the result back to the host space explicitly
    mirror = kokkos.create_mirror_view(y)
    kokkos.deep_copy(mirror, y)
    return mirror.data.copy()


def with_raja() -> np.ndarray:
    """RAJA: a lambda over an IndexSet, reductions via ReduceSum objects."""
    from repro.models import raja

    x, y = np.arange(N, dtype=float), np.ones(N)
    iset = raja.IndexSet([raja.RangeSegment(0, N // 2), raja.RangeSegment(N // 2, N)])
    raja.forall(
        raja.omp_parallel_for_exec,
        iset,
        lambda i: y.__setitem__(i, A * x[i] + y[i]),
    )
    return y


def with_cuda() -> np.ndarray:
    """CUDA: explicit device memory, memcpy, and <<<grid, block>>> math."""
    from repro.models import cuda

    rt = cuda.CudaRuntime()
    d_x = rt.malloc(N, "x")
    d_y = rt.malloc(N, "y")
    rt.memcpy(d_x, np.arange(N, dtype=float), cuda.MemcpyKind.HOST_TO_DEVICE)
    rt.memcpy(d_y, np.ones(N), cuda.MemcpyKind.HOST_TO_DEVICE)

    def daxpy_kernel(ctx, n, a, xx, yy):
        idx = ctx.blockIdx_x * ctx.blockDim_x + ctx.threadIdx_x
        i = idx[idx < n]  # guard iteration overspill
        yy[i] = a * xx[i] + yy[i]

    block = cuda.Dim3(128)
    grid = cuda.Dim3(cuda.blocks_for(N, 128))
    cuda.launch(daxpy_kernel, grid, block, N, A, d_x.data, d_y.data)
    out = np.zeros(N)
    rt.memcpy(out, d_y, cuda.MemcpyKind.DEVICE_TO_HOST)
    return out


def with_opencl() -> np.ndarray:
    """OpenCL: the full platform/context/queue/program/set_arg ceremony."""
    from repro.models import opencl

    platform, device = opencl.platform.find_device(opencl.DeviceType.GPU)
    ctx = opencl.Context([device])
    queue = opencl.CommandQueue(ctx, device)

    def daxpy_cl(gid, n, a, xx, yy):
        i = gid[gid < n]
        yy[i] = a * xx[i] + yy[i]

    program = opencl.Program(ctx, {"daxpy": daxpy_cl}).build()
    kernel = program.create_kernel("daxpy")
    buf_x = opencl.Buffer(ctx, opencl.MemFlags.READ_ONLY, size=N * 8)
    buf_y = opencl.Buffer(ctx, opencl.MemFlags.READ_WRITE, size=N * 8)
    queue.enqueue_write_buffer(buf_x, np.arange(N, dtype=float))
    queue.enqueue_write_buffer(buf_y, np.ones(N))
    kernel.set_arg(0, N)
    kernel.set_arg(1, A)
    kernel.set_arg(2, buf_x)
    kernel.set_arg(3, buf_y)
    local = 128
    global_size = ((N + local - 1) // local) * local
    queue.enqueue_nd_range_kernel(kernel, global_size, local)
    queue.finish()
    out = np.zeros(N)
    queue.enqueue_read_buffer(buf_y, out)
    return out


def with_openmp4() -> np.ndarray:
    """OpenMP 4.0: target data mapping + a target region per kernel."""
    from repro.models.openmp.directives import (
        DeviceDataEnvironment,
        TargetDataRegion,
        target,
    )
    from repro.models.tracing import Trace

    trace = Trace()
    env = DeviceDataEnvironment(trace)
    x, y = np.arange(N, dtype=float), np.ones(N)
    with TargetDataRegion(env, map_to={"x": x}, map_tofrom={"y": y}):
        with target(env, trace, "daxpy") as dev:
            dx, dy = dev.device("x"), dev.device("y")
            dy[...] = A * dx + dy
    return y


def with_kernel_plan() -> None:
    """The port-authoring surface after the kernel-plan refactor.

    A TeaLeaf port no longer re-implements the ~20-kernel call sequence:
    it supplies ``_k_<op>`` primitive bodies (plus a residency adapter
    for offload models) and inherits dispatch, tracing, fusion, and
    residency tracking from ``Port``.  Solvers hand declarative
    :class:`Plan` objects to a :class:`PlanExecutor`, which is also the
    one place cross-model optimisation happens: below, the PCG tail's
    precondition + dot pair runs as two launches unfused and as a single
    fused traversal — with bitwise-identical scalars.
    """
    from repro.core import fields as F
    from repro.core.deck import default_deck
    from repro.models.base import make_port
    from repro.models.plan import KernelCall, Plan, PlanExecutor
    from repro.models.tracing import Trace

    deck = default_deck(n=16, solver="cg", end_step=1)
    plan = Plan(
        "pcg_tail_fragment",
        (
            KernelCall("cg_precon_jacobi"),
            KernelCall("dot_fields", (F.R, F.Z), out="rrz"),
        ),
    )
    scalars = {}
    for fuse in (False, True):
        trace = Trace()
        grid = deck.grid()
        port = make_port("openmp-f90", grid, trace)
        density = np.ones(grid.shape)
        energy = np.fromfunction(
            lambda j, i: 1.0 + 0.1 * (i + 2 * j), grid.shape
        )
        port.set_state(density, energy)
        port.set_field()
        port.begin_solve()
        port.tea_leaf_init(deck.initial_timestep, deck.tl_coefficient)
        port.cg_init()
        launches_before = trace.kernel_launches()
        env = PlanExecutor(port, fuse=fuse).run(plan)
        scalars[fuse] = env["rrz"]
        print(
            f"  fuse={'on ' if fuse else 'off'}: "
            f"{trace.kernel_launches() - launches_before} launches, "
            f"rrz={env['rrz']:.17e}"
        )
    assert scalars[False] == scalars[True]  # bitwise, not approximately
    print(plan.describe(fuse=True))


def main() -> None:
    expected = A * np.arange(N, dtype=float) + 1.0
    for name, fn in (
        ("OpenMP 3.0", with_openmp3),
        ("Kokkos", with_kokkos),
        ("RAJA", with_raja),
        ("CUDA", with_cuda),
        ("OpenCL", with_opencl),
        ("OpenMP 4.0", with_openmp4),
    ):
        result = fn()
        ok = np.allclose(result, expected)
        print(f"{name:12s} daxpy: {'OK' if ok else 'WRONG'}")
        assert ok
    print("kernel-plan dispatch (shared across all ports):")
    with_kernel_plan()


if __name__ == "__main__":
    main()
