"""The paper's experiment in miniature: port TeaLeaf everywhere, compare.

1. Runs the same problem through all ten registered programming-model
   ports and verifies they produce identical physics (the paper's
   controlled-comparison requirement).
2. Shows how the *trace structure* differs per model even though the
   numerics agree: offload regions, host<->device transfers, manual
   reduction passes.
3. Projects each model's solve time onto the simulated evaluation devices
   (dual Xeon E5-2670, Tesla K20X, Xeon Phi KNC) — a miniature of
   Figures 8-10.

    python examples/compare_models.py
"""

import numpy as np

from repro.core import TeaLeaf, default_deck
from repro.core import fields as F
from repro.machine.calibration import models_for_device
from repro.machine.devices import DEVICES
from repro.harness.experiments import projected_runtime
from repro.models import available_models

MESH = 64
PROJECTED_MESH = 1024


def run_all_ports():
    deck = default_deck(n=MESH, solver="cg", end_step=1, eps=1e-9)
    grid = deck.grid()
    print(f"-- running {deck.solver} on {MESH}x{MESH} through every port --\n")
    reference = None
    header = f"{'model':12s} {'iters':>6s} {'max |u - ref|':>14s}  trace"
    print(header)
    print("-" * len(header))
    for model in available_models():
        app = TeaLeaf(deck, model=model)
        result = app.run()
        u = app.field(F.U)[grid.inner()]
        if reference is None:
            reference = u
        diff = float(np.max(np.abs(u - reference)))
        print(
            f"{model:12s} {result.total_iterations:6d} {diff:14.3e}  "
            f"{result.trace.summary()}"
        )
    print(
        "\nEvery port reproduces the same fields: the programming models "
        "differ in *how* the kernels run, not *what* they compute.\n"
    )


def project_devices():
    print(
        f"-- simulated solve seconds at {PROJECTED_MESH}x{PROJECTED_MESH}, "
        "CG, 2 steps (miniature Figures 8-10) --\n"
    )
    for kind, device in DEVICES.items():
        models = models_for_device(kind)
        print(f"{device.name}:")
        for model in models:
            bd = projected_runtime(model, kind, "cg", PROJECTED_MESH, 2)
            print(
                f"   {model:12s} {bd.total:8.2f} s  "
                f"(compute {bd.compute:7.2f}s, overheads {bd.overhead_fraction:5.1%}, "
                f"achieved {bd.achieved_bandwidth() / 1e9:6.1f} GB/s)"
            )
        print()


if __name__ == "__main__":
    run_all_ports()
    project_devices()
