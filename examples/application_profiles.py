"""§8 future work: how the model ranking shifts with the application.

The paper: "TeaLeaf has a specific performance profile, and it would be
very useful to consider the success of each model relative to applications
that have different requirements such as CloverLeaf and the SN Application
Proxy (SNAP)".

This example runs the probe kernels (CloverLeaf-style EOS and advection,
SNAP-style wavefront sweep — real, tested numerics in
``repro.profiles.workloads``) and prints each model's penalty factor per
profile on the KNC: the offload model that is merely ~40% slower on
TeaLeaf's stencils becomes >10x slower on the sweep, because a wavefront
must open one target region per anti-diagonal.

    python examples/application_profiles.py
"""

import numpy as np

from repro.models.base import DeviceKind
from repro.profiles.analysis import PROFILES, compare_profiles
from repro.profiles.workloads import (
    eos_ideal_gas,
    upwind_advection,
    wavefront_sweep,
)

MODELS = ["openmp-f90", "openmp4", "kokkos", "kokkos-hp", "opencl", "raja"]
N = 1024


def demonstrate_numerics() -> None:
    print("-- the probe kernels are real computations --")
    rng = np.random.default_rng(42)
    density = rng.uniform(0.5, 2.0, (64, 64))
    energy = rng.uniform(1.0, 3.0, (64, 64))
    pressure, c = eos_ideal_gas(density, energy)
    print(f"EOS:       mean pressure {pressure.mean():.4f}, mean sound speed {c.mean():.4f}")

    u = np.zeros((1, 64))
    u[0, 20:30] = 1.0
    moved = upwind_advection(u, np.ones_like(u), dt_over_dx=0.5)
    print(f"advection: total mass conserved? {np.isclose(moved.sum(), u.sum())}")

    psi = wavefront_sweep(np.ones((64, 64)), sigma=0.5)
    print(f"sweep:     psi[0,0]={psi[0,0]:.4f} -> psi[-1,-1]={psi[-1,-1]:.4f} "
          "(flux builds up along the wavefront)\n")


def compare() -> None:
    table = compare_profiles(DeviceKind.KNC, MODELS, n=N)
    print(f"-- penalty vs the per-profile winner, KNC, {N}x{N} --\n")
    header = f"{'profile':18s}" + "".join(f"{m:>12s}" for m in MODELS)
    print(header)
    print("-" * len(header))
    for name in PROFILES:
        row = f"{name:18s}" + "".join(
            f"{table[name][m]:12.2f}" for m in MODELS
        )
        print(row)
    print(
        "\nThe ranking—and the magnitude of the spread—depends on the "
        "application profile: launch/region-heavy models collapse on the "
        "dependency-limited sweep, while compute-rich kernels compress the "
        "bandwidth-efficiency differences entirely."
    )


if __name__ == "__main__":
    demonstrate_numerics()
    compare()
